// Mechanical fault sweep over the durability path (ISSUE 9):
//
//  * Enumeration: one disarmed warm-up pass over save/load/mmap/peek/open/
//    swap registers every fault site the durability path owns; the sweep
//    asserts >= 10 and then never names a site by hand.
//  * Per-site sweep: every registered site is armed (fail every hit) and a
//    save -> swap -> serve loop runs against it. Whatever fails must fail
//    with a clean Status; the engine must keep serving bit-identically to
//    one of the two known model generations; an artifact file either holds
//    a complete generation or does not exist; and no *.tmp* sibling
//    survives any path. scripts/ci.sh runs this under ASan and TSan.
//  * ENOSPC / short-write: injected write and fsync failures on both
//    artifact formats leave the prior artifact byte-identical and drop no
//    temp files (satellite of ISSUE 9).
//  * Probe verification: a candidate epoch that diverges from its stamped
//    golden references is rejected before publication — it never serves a
//    single request — while matching references publish cleanly.
//  * Rollback: SwapPolicy::rollback_capacity retains replaced epochs and
//    RollbackToPrevious republishes them newest-first under fresh sequence
//    numbers.
//  * Multi-fault storm: several sites armed probabilistically (fixed seed)
//    while clients hammer Estimate and a swapper flips generations with
//    retries — every response must be clean and bit-identical to the
//    generation its fingerprint names, in the style of overload_chaos_test.
//  * Disarmed bit-identity: with no plan armed, saves are byte-identical
//    and the default SwapPolicy serves/swaps exactly like pre-policy
//    serving (no retained epochs, no probe failures).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fault_injection.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "core/shard_writer.h"
#include "core/weight_function.h"
#include "roadnet/shortest_path.h"
#include "serving/engine.h"
#include "serving/sharded_engine.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace serving {
namespace {

using core::HybridParams;
using core::PathWeightFunction;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

constexpr double kDepart = 8 * 3600.0;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

class FaultSweepTest : public ::testing::Test {
 protected:
  static std::string Prefix() {
    return "pcde_sweep." + std::to_string(::getpid());
  }

  static void SetUpTestSuite() {
    dataset_ = new traj::Dataset(traj::MakeDatasetA(800));
    graph_ = dataset_->graph.get();
    HybridParams params;
    // beta low enough that 800 trips qualify trajectory windows — the two
    // generations must actually differ (asserted below).
    params.beta = 8;
    wp_base_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(), params));
    wp_data_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(dataset_->MatchedSlice(1.0)), params));
    ASSERT_NE(wp_base_->fingerprint(), wp_data_->fingerprint());
    bin_base_ = TempPath(Prefix() + ".base.bin");
    bin_data_ = TempPath(Prefix() + ".data.bin");
    text_data_ = TempPath(Prefix() + ".data.txt");
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_base_, bin_base_).ok());
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_data_, bin_data_).ok());
    ASSERT_TRUE(core::SaveWeightFunction(*wp_data_, text_data_).ok());
    // Reference answers per generation for the fixed probe request: every
    // served response in the sweep must ExactlyEqual the reference of the
    // generation its fingerprint names.
    for (const PathWeightFunction* wp : {wp_base_, wp_data_}) {
      auto ref = OpenEngineOn(wp == wp_base_ ? bin_base_ : bin_data_,
                              EngineOptions());
      ASSERT_NE(ref, nullptr);
      auto response = ref->Estimate(ProbeRequest());
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      (*references_)[wp->fingerprint()] = response.value().summary;
    }
    // A 2-shard split of the data generation joins the durability path
    // (manifest write/load + shard-attach sites, ISSUE 10). Its probe
    // answer is a reference keyed by the MANIFEST fingerprint — sharded
    // responses stamp the generation identity of the whole shard set.
    manifest_ = TempPath(Prefix() + ".fix.pcdemf");
    core::ShardWriteOptions shard_options;
    shard_options.num_shards = 2;
    shard_options.file_prefix = Prefix() + ".fix";
    auto split = core::WriteModelShards(*wp_data_, manifest_, shard_options);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    for (const auto& shard : split.value().shards) {
      shard_files_->push_back(TempPath(shard.file));
    }
    {
      ShardedEngineOptions options;
      options.engine.graph = graph_;
      options.engine.num_threads = 1;
      options.engine.query_cache_bytes = 0;
      auto sharded = ShardedEngine::Open(manifest_, std::move(options));
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      auto probe = sharded.value()->Estimate(ProbeRequest());
      ASSERT_TRUE(probe.ok()) << probe.status().ToString();
      (*references_)[split.value().fingerprint] = probe.value().summary;
    }
  }

  static void TearDownTestSuite() {
    std::remove(bin_base_.c_str());
    std::remove(bin_data_.c_str());
    std::remove(text_data_.c_str());
    std::remove(manifest_.c_str());
    for (const std::string& p : *shard_files_) std::remove(p.c_str());
    shard_files_->clear();
    delete wp_data_;
    delete wp_base_;
    delete dataset_;
    wp_data_ = nullptr;
    wp_base_ = nullptr;
    dataset_ = nullptr;
    graph_ = nullptr;
  }

  void TearDown() override {
    fault::DisarmAllFaults();
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(std::string p) {
    cleanup_.push_back(p);
    return p;
  }

  static std::unique_ptr<Engine> OpenEngineOn(const std::string& artifact,
                                              EngineOptions options) {
    options.model_path = artifact;
    options.graph = graph_;
    options.num_threads = 1;
    options.query_cache_bytes = 0;
    auto engine = Engine::Open(std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(engine).value() : nullptr;
  }

  static Path PathBetween(VertexId from, VertexId to) {
    auto p = roadnet::ShortestPath(*graph_, from, to,
                                   roadnet::FreeFlowWeight(*graph_));
    EXPECT_TRUE(p.ok());
    return p.ok() ? p.value() : Path();
  }

  static EstimateRequest ProbeRequest() {
    EstimateRequest request;
    request.path = PathSpec::ExplicitPath(PathBetween(0, 30));
    request.departure_time = kDepart;
    return request;
  }

  /// Asserts the response is clean and bit-identical to the generation its
  /// fingerprint names — the "old epoch still serving" gate of every sweep
  /// iteration.
  static void ExpectServedFromKnownGeneration(
      const StatusOr<EstimateResponse>& response) {
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto it = references_->find(response.value().model_fingerprint);
    ASSERT_NE(it, references_->end())
        << "response fingerprint names no known generation";
    EXPECT_TRUE(response.value().summary.ExactlyEquals(it->second));
  }

  /// No "<prefix>*.tmp.*" sibling may survive any sweep iteration: the
  /// atomic writers unlink their temp file on every error path.
  static void ExpectNoTmpDroppings() {
    const std::string prefix = Prefix();
    for (const auto& entry : std::filesystem::directory_iterator(
             std::filesystem::temp_directory_path())) {
      const std::string name = entry.path().filename().string();
      EXPECT_FALSE(name.rfind(prefix, 0) == 0 &&
                   name.find(".tmp.") != std::string::npos)
          << "temp-file dropping: " << name;
    }
  }

  /// One disarmed pass over every durability path so all (lazily
  /// registered) fault sites enter the registry before a sweep enumerates
  /// them.
  static void RegisterDurabilityPath() {
    static bool done = false;
    if (done) return;
    done = true;
    ASSERT_FALSE(fault::Armed());
    const std::string b = TempPath(Prefix() + ".warm.bin");
    const std::string t = TempPath(Prefix() + ".warm.txt");
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_data_, b).ok());
    ASSERT_TRUE(core::SaveWeightFunction(*wp_data_, t).ok());
    ASSERT_TRUE(core::LoadWeightFunction(t).ok());
    ASSERT_TRUE(core::LoadWeightFunctionBinary(b, /*use_mmap=*/false).ok());
    ASSERT_TRUE(core::LoadWeightFunctionBinary(b, /*use_mmap=*/true).ok());
    ASSERT_TRUE(core::PeekBinaryArtifactFingerprint(b).ok());
    auto engine = OpenEngineOn(bin_base_, EngineOptions());
    ASSERT_NE(engine, nullptr);
    ASSERT_TRUE(engine->Swap(bin_data_).ok());
    // Sharded durability path (ISSUE 10): the split registers the manifest
    // write sites, the load registers the manifest read sites, and a
    // served request registers the shard-attach site.
    const std::string m = TempPath(Prefix() + ".warm.pcdemf");
    core::ShardWriteOptions shard_options;
    shard_options.num_shards = 2;
    shard_options.file_prefix = Prefix() + ".warmshard";
    auto split = core::WriteModelShards(*wp_data_, m, shard_options);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    ASSERT_TRUE(core::LoadShardManifest(m).ok());
    {
      ShardedEngineOptions options;
      options.engine.graph = graph_;
      options.engine.num_threads = 1;
      options.engine.query_cache_bytes = 0;
      auto sharded = ShardedEngine::Open(m, std::move(options));
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ASSERT_TRUE(sharded.value()->Estimate(ProbeRequest()).ok());
    }
    for (const auto& shard : split.value().shards) {
      std::remove(TempPath(shard.file).c_str());
    }
    std::remove(m.c_str());
    std::remove(b.c_str());
    std::remove(t.c_str());
  }

  static traj::Dataset* dataset_;
  static const Graph* graph_;
  static PathWeightFunction* wp_base_;  // speed-limit-only generation
  static PathWeightFunction* wp_data_;  // trajectory-instantiated generation
  static std::string bin_base_;
  static std::string bin_data_;
  static std::string text_data_;
  static std::string manifest_;  // 2-shard split of the data generation
  static std::vector<std::string>* shard_files_;
  static std::unordered_map<uint64_t, CostSummary>* references_;
  std::vector<std::string> cleanup_;
};

traj::Dataset* FaultSweepTest::dataset_ = nullptr;
const Graph* FaultSweepTest::graph_ = nullptr;
PathWeightFunction* FaultSweepTest::wp_base_ = nullptr;
PathWeightFunction* FaultSweepTest::wp_data_ = nullptr;
std::string FaultSweepTest::bin_base_;
std::string FaultSweepTest::bin_data_;
std::string FaultSweepTest::text_data_;
std::string FaultSweepTest::manifest_;
std::vector<std::string>* FaultSweepTest::shard_files_ =
    new std::vector<std::string>();
std::unordered_map<uint64_t, CostSummary>* FaultSweepTest::references_ =
    new std::unordered_map<uint64_t, CostSummary>();

// ---------------------------------------------------------------------------
// Enumeration + per-site sweep (the capstone)
// ---------------------------------------------------------------------------

TEST_F(FaultSweepTest, RegistryEnumeratesTheDurabilityPath) {
  RegisterDurabilityPath();
  const std::vector<std::string> sites = fault::RegisteredFaultSites();
  EXPECT_GE(sites.size(), 10u) << "durability path registered too few sites";
  // The sweep is mechanical, but the macro-declared exemplar of the design
  // must be among them.
  EXPECT_NE(std::find(sites.begin(), sites.end(),
                      std::string("serialization.binary.write")),
            sites.end());
  // The sharded durability path (manifest writer + shard attach) is
  // enumerated alongside the artifact sites.
  EXPECT_NE(std::find(sites.begin(), sites.end(),
                      std::string("serialization.manifest.write")),
            sites.end());
  EXPECT_NE(std::find(sites.begin(), sites.end(),
                      std::string("serving.shard.attach")),
            sites.end());
}

TEST_F(FaultSweepTest, PerSiteSweepFailsCleanAndKeepsServing) {
  RegisterDurabilityPath();
  const std::vector<std::string> sites = fault::RegisteredFaultSites();
  ASSERT_GE(sites.size(), 10u);

  for (const std::string& site : sites) {
    SCOPED_TRACE("site: " + site);
    // The long-lived engine opens BEFORE the fault arms (it is the old
    // epoch that must keep serving); everything after runs faulted.
    auto engine = OpenEngineOn(bin_base_, EngineOptions());
    ASSERT_NE(engine, nullptr);
    const uint64_t sequence_before = engine->epoch_sequence();

    fault::ScopedFaultInjection injection;
    fault::FaultPlan plan;
    plan.fail_every = 1;  // persistent: every traversal of `site` fails
    ASSERT_TRUE(injection.Arm(site, plan).ok());
    fault::ResetFaultCounters();

    // Save both formats to fresh paths. Allowed to fail (clean Status);
    // an artifact file, if it exists at all, must be a COMPLETE save
    // (byte-identical to the fixture artifact of the same model) — the
    // dirsync site fails after the rename has landed, every other site
    // before it.
    const std::string fresh_bin = Track(TempPath(Prefix() + ".it.bin"));
    const std::string fresh_text = Track(TempPath(Prefix() + ".it.txt"));
    const Status saved_bin =
        core::SaveWeightFunctionBinary(*wp_data_, fresh_bin);
    if (std::filesystem::exists(fresh_bin)) {
      EXPECT_EQ(ReadAll(fresh_bin), ReadAll(bin_data_));
    } else {
      EXPECT_FALSE(saved_bin.ok());
    }
    const Status saved_text = core::SaveWeightFunction(*wp_data_, fresh_text);
    if (std::filesystem::exists(fresh_text)) {
      EXPECT_EQ(ReadAll(fresh_text), ReadAll(text_data_));
    } else {
      EXPECT_FALSE(saved_text.ok());
    }

    // Direct loads of known-good fixture artifacts: ok or clean failure,
    // never a crash or a torn result.
    (void)core::LoadWeightFunction(text_data_);
    (void)core::LoadWeightFunctionBinary(bin_data_, /*use_mmap=*/false);
    (void)core::LoadWeightFunctionBinary(bin_data_, /*use_mmap=*/true);
    (void)core::PeekBinaryArtifactFingerprint(bin_data_);
    {
      EngineOptions options;
      options.model_path = bin_base_;
      options.graph = graph_;
      options.num_threads = 1;
      options.query_cache_bytes = 0;
      auto opened = Engine::Open(std::move(options));
      if (opened.ok()) {
        ExpectServedFromKnownGeneration(
            opened.value()->Estimate(ProbeRequest()));
      }
    }

    // Sharded front door under the same fault. A fresh split may fail
    // (clean Status); a committed manifest implies its rename landed.
    const std::string fresh_manifest =
        Track(TempPath(Prefix() + ".it.pcdemf"));
    Track(TempPath(Prefix() + ".itshard.0.pcdewf"));
    Track(TempPath(Prefix() + ".itshard.1.pcdewf"));
    core::ShardWriteOptions shard_options;
    shard_options.num_shards = 2;
    shard_options.file_prefix = Prefix() + ".itshard";
    const auto split =
        core::WriteModelShards(*wp_data_, fresh_manifest, shard_options);
    if (split.ok()) {
      EXPECT_TRUE(std::filesystem::exists(fresh_manifest));
    }
    // Manifest load + sharded open/serve against the known-good fixture
    // generation: ok or clean failure, and a response that does land must
    // be bit-identical to the disarmed sharded reference.
    (void)core::LoadShardManifest(manifest_);
    {
      ShardedEngineOptions options;
      options.engine.graph = graph_;
      options.engine.num_threads = 1;
      options.engine.query_cache_bytes = 0;
      auto sharded = ShardedEngine::Open(manifest_, std::move(options));
      if (sharded.ok()) {
        auto response = sharded.value()->Estimate(ProbeRequest());
        if (response.ok()) ExpectServedFromKnownGeneration(response);
      }
    }

    // Swap toward the generation not currently served, so the attempt
    // never short-circuits and always exercises the swap path.
    const bool serving_base =
        engine->model().fingerprint() == wp_base_->fingerprint();
    auto swapped = engine->Swap(serving_base ? bin_data_ : bin_base_);
    if (!swapped.ok()) {
      EXPECT_EQ(engine->epoch_sequence(), sequence_before)
          << "failed swap must not advance the epoch";
    }

    // Serve: the request path has no fault sites — it must succeed and
    // answer bit-identically to whichever generation is published.
    ExpectServedFromKnownGeneration(engine->Estimate(ProbeRequest()));

    // The armed site really ran and really fired at least once.
    EXPECT_GE(fault::FaultSiteHits(site), 1u) << "site never traversed";
    EXPECT_GE(fault::FaultSiteTriggers(site), 1u) << "site never fired";

    ExpectNoTmpDroppings();
    std::remove(fresh_bin.c_str());
    std::remove(fresh_text.c_str());
    std::remove(fresh_manifest.c_str());
    std::remove(TempPath(Prefix() + ".itshard.0.pcdewf").c_str());
    std::remove(TempPath(Prefix() + ".itshard.1.pcdewf").c_str());
  }
  EXPECT_FALSE(fault::Armed()) << "a sweep iteration leaked an armed plan";
}

// ---------------------------------------------------------------------------
// ENOSPC / short-write: the prior artifact survives byte-identically
// ---------------------------------------------------------------------------

TEST_F(FaultSweepTest, TornWritesLeavePriorArtifactIntact) {
  RegisterDurabilityPath();
  struct Case {
    const char* site;
    uint64_t fail_on_hit;  // 0 = fail_every=1
    bool binary;
  };
  // fail_on_hit=3 on the binary writer fails MID-STREAM (after the header
  // and table already hit the temp file) — a genuinely torn temp, since the
  // injected write really writes half the remaining bytes first. The text
  // writer issues one full-buffer write, so hit 1 is its only traversal.
  const Case cases[] = {
      {"serialization.binary.write", 3, true},
      {"serialization.binary.fsync", 0, true},
      {"serialization.text.write", 1, false},
      {"serialization.text.fsync", 0, false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.site);
    const std::string target =
        Track(TempPath(Prefix() + (c.binary ? ".enospc.bin" : ".enospc.txt")));
    // Publish a prior generation cleanly, then try to replace it faulted.
    ASSERT_TRUE((c.binary ? core::SaveWeightFunctionBinary(*wp_base_, target)
                          : core::SaveWeightFunction(*wp_base_, target))
                    .ok());
    const std::vector<char> prior = ReadAll(target);
    ASSERT_FALSE(prior.empty());

    fault::ScopedFaultInjection injection;
    fault::FaultPlan plan;
    if (c.fail_on_hit > 0) {
      plan.fail_on_hit = c.fail_on_hit;
    } else {
      plan.fail_every = 1;
    }
    ASSERT_TRUE(injection.Arm(c.site, plan).ok());

    const Status saved = c.binary
                             ? core::SaveWeightFunctionBinary(*wp_data_, target)
                             : core::SaveWeightFunction(*wp_data_, target);
    EXPECT_FALSE(saved.ok());
    EXPECT_EQ(saved.code(), StatusCode::kInternal) << saved.ToString();
    EXPECT_EQ(ReadAll(target), prior)
        << "failed save must leave the prior artifact byte-identical";
    ExpectNoTmpDroppings();
    EXPECT_GE(fault::FaultSiteTriggers(c.site), 1u);

    // The surviving artifact still loads and serves its generation.
    fault::DisarmAllFaults();
    auto loaded = c.binary
                      ? core::LoadWeightFunctionBinary(target, /*use_mmap=*/false)
                      : core::LoadWeightFunction(target);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().fingerprint(), wp_base_->fingerprint());
    std::remove(target.c_str());
  }
}

TEST_F(FaultSweepTest, ZeroLengthArtifactIsRejectedBeforeMmap) {
  const std::string empty = Track(TempPath(Prefix() + ".empty.bin"));
  { std::ofstream out(empty, std::ios::binary); }
  ASSERT_TRUE(std::filesystem::exists(empty));
  auto mapped = core::LoadWeightFunctionBinary(empty, /*use_mmap=*/true);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument)
      << mapped.status().ToString();
  auto buffered = core::LoadWeightFunctionBinary(empty, /*use_mmap=*/false);
  EXPECT_FALSE(buffered.ok());
}

// ---------------------------------------------------------------------------
// Pre-publish probe verification
// ---------------------------------------------------------------------------

TEST_F(FaultSweepTest, ProbeVerificationGatesPublication) {
  RegisterDurabilityPath();
  // Golden references are stamped per model generation, from the summaries
  // an engine over that generation actually serves.
  const auto make_probes = [](const std::string& artifact, bool with_refs) {
    std::vector<GoldenProbe> probes;
    auto ref = OpenEngineOn(artifact, EngineOptions());
    EXPECT_NE(ref, nullptr);
    const std::pair<VertexId, VertexId> ods[] = {{0, 30}, {5, 40}, {2, 61}};
    for (const auto& od : ods) {
      GoldenProbe probe;
      probe.request.path =
          PathSpec::ExplicitPath(PathBetween(od.first, od.second));
      probe.request.departure_time = kDepart;
      if (with_refs && ref != nullptr) {
        auto response = ref->Estimate(probe.request);
        EXPECT_TRUE(response.ok()) << response.status().ToString();
        probe.has_reference = true;
        probe.reference = response.value().summary;
      }
      probes.push_back(std::move(probe));
    }
    return probes;
  };

  auto engine = OpenEngineOn(bin_base_, EngineOptions());
  ASSERT_NE(engine, nullptr);

  // A reference that candidate B cannot reproduce: scan for a request the
  // two generations answer differently (most paths fall back identically
  // on sparsely covered edges, so hunt for a covered one); if the dataset
  // is too sparse for any, perturb a matching reference instead — either
  // way the stamped reference diverges from what B serves.
  GoldenProbe divergent_probe;
  divergent_probe.has_reference = true;
  {
    auto ref_a = OpenEngineOn(bin_base_, EngineOptions());
    auto ref_b = OpenEngineOn(bin_data_, EngineOptions());
    ASSERT_NE(ref_a, nullptr);
    ASSERT_NE(ref_b, nullptr);
    bool found = false;
    for (VertexId v = 0; v < 120 && !found; v += 3) {
      auto path = roadnet::ShortestPath(*graph_, v, v + 40,
                                        roadnet::FreeFlowWeight(*graph_));
      if (!path.ok()) continue;  // pruned grid: skip unreachable pairs
      EstimateRequest request;
      request.path = PathSpec::ExplicitPath(path.value());
      request.departure_time = kDepart;
      auto got_a = ref_a->Estimate(request);
      auto got_b = ref_b->Estimate(request);
      if (got_a.ok() && got_b.ok() &&
          !got_a.value().summary.ExactlyEquals(got_b.value().summary)) {
        divergent_probe.request = request;
        divergent_probe.reference = got_a.value().summary;
        found = true;
      }
    }
    if (!found) {
      divergent_probe.request = ProbeRequest();
      auto got_b = ref_b->Estimate(divergent_probe.request);
      ASSERT_TRUE(got_b.ok());
      divergent_probe.reference = got_b.value().summary;
      divergent_probe.reference.mean += 1.0;
    }
  }

  // The stamped reference diverges from candidate B, so the swap must
  // reject before publication — the candidate never serves a single
  // request.
  SwapOptions divergent;
  divergent.probes.push_back(divergent_probe);
  auto rejected = engine->Swap(bin_data_, divergent);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().ToString().find("rejected"), std::string::npos)
      << rejected.status().ToString();
  EXPECT_EQ(engine->epoch_sequence(), 1u);
  EXPECT_EQ(engine->stats().probe_failures, 1u);
  {
    auto response = engine->Estimate(ProbeRequest());
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().model_fingerprint, wp_base_->fingerprint())
        << "rejected candidate must never serve";
  }

  // Matching references (stamped from generation B) publish cleanly.
  SwapOptions matching;
  matching.probes = make_probes(bin_data_, /*with_refs=*/true);
  auto swapped = engine->Swap(bin_data_, matching);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2u);
  {
    auto response = engine->Estimate(ProbeRequest());
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().model_fingerprint, wp_data_->fingerprint());
  }

  // Reference-free probes assert serveability only: fine across
  // generations.
  SwapOptions serveability;
  serveability.probes = make_probes(bin_base_, /*with_refs=*/false);
  auto back = engine->Swap(bin_base_, serveability);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), 3u);
  EXPECT_EQ(engine->stats().probe_failures, 1u);

  // The verification stage has its own fault site: an injected verify
  // fault rejects even a probe-free swap.
  fault::ScopedFaultInjection injection;
  fault::FaultPlan plan;
  plan.fail_on_hit = 1;
  ASSERT_TRUE(injection.Arm("serving.swap.verify", plan).ok());
  auto injected = engine->Swap(bin_data_);
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->epoch_sequence(), 3u);
  EXPECT_EQ(engine->stats().probe_failures, 2u);
}

// ---------------------------------------------------------------------------
// Last-known-good rollback ring
// ---------------------------------------------------------------------------

TEST_F(FaultSweepTest, RollbackRingRepublishesLastKnownGood) {
  EngineOptions options;
  options.swap_policy.rollback_capacity = 2;
  auto engine = OpenEngineOn(bin_base_, options);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->rollback_depth(), 0u);

  ASSERT_TRUE(engine->Swap(bin_data_).ok());  // seq 2; ring: [A]
  ASSERT_TRUE(engine->Swap(bin_base_).ok());  // seq 3; ring: [A, B]
  EXPECT_EQ(engine->rollback_depth(), 2u);

  // Newest-first out: the first rollback republishes generation B under a
  // NEW sequence (epochs never go backward).
  auto first = engine->RollbackToPrevious();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value(), 4u);
  EXPECT_EQ(engine->rollback_depth(), 1u);
  {
    auto response = engine->Estimate(ProbeRequest());
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().model_fingerprint, wp_data_->fingerprint());
    EXPECT_EQ(response.value().epoch, 4u);
  }

  auto second = engine->RollbackToPrevious();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 5u);
  EXPECT_EQ(engine->rollback_depth(), 0u);
  ExpectServedFromKnownGeneration(engine->Estimate(ProbeRequest()));
  EXPECT_EQ(engine->model().fingerprint(), wp_base_->fingerprint());

  auto exhausted = engine->RollbackToPrevious();
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine->stats().rollbacks, 2u);

  // The ring is bounded: three more swaps retain only the newest two.
  ASSERT_TRUE(engine->Swap(bin_data_).ok());
  ASSERT_TRUE(engine->Swap(bin_base_).ok());
  ASSERT_TRUE(engine->Swap(bin_data_).ok());
  EXPECT_EQ(engine->rollback_depth(), 2u);
}

// ---------------------------------------------------------------------------
// Randomized multi-fault storm (overload_chaos_test style)
// ---------------------------------------------------------------------------

TEST_F(FaultSweepTest, MultiFaultStormNeverCorruptsServing) {
  RegisterDurabilityPath();
  EngineOptions options;
  options.swap_policy.max_attempts = 4;
  options.swap_policy.initial_backoff_seconds = 0.0005;
  options.swap_policy.max_backoff_seconds = 0.002;
  options.num_threads = 2;
  auto engine = OpenEngineOn(bin_base_, options);
  ASSERT_NE(engine, nullptr);

  // Probabilistic plans under fixed seeds: the storm replays
  // bit-identically. Only swap-path sites are armed — the serve path has
  // none, so every client response must be clean AND bit-identical to the
  // generation its fingerprint names.
  fault::ScopedFaultInjection injection;
  const std::pair<const char*, double> storm[] = {
      {"serialization.load.open", 0.30},
      {"serialization.load.read", 0.30},
      {"serialization.peek.open", 0.30},
      {"serving.swap.load", 0.25},
      {"serving.swap.verify", 0.10},
  };
  uint64_t seed = 0xfeedface;
  for (const auto& site : storm) {
    fault::FaultPlan plan;
    plan.fail_probability = site.second;
    plan.seed = seed++;
    ASSERT_TRUE(injection.Arm(site.first, plan).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      const EstimateRequest request = ProbeRequest();
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = engine->Estimate(request);
        if (!response.ok()) {
          bad.fetch_add(1);
          continue;
        }
        auto it = references_->find(response.value().model_fingerprint);
        if (it == references_->end() ||
            !response.value().summary.ExactlyEquals(it->second)) {
          bad.fetch_add(1);
        }
        served.fetch_add(1);
      }
    });
  }

  // The swapper flips generations through the storm; each attempt must
  // either land or fail with a clean Status (retries absorb transients).
  uint64_t landed = 0;
  for (int i = 0; i < 12; ++i) {
    const bool serving_base =
        engine->model().fingerprint() == wp_base_->fingerprint();
    auto swapped = engine->Swap(serving_base ? bin_data_ : bin_base_);
    if (swapped.ok()) ++landed;
  }
  stop.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(bad.load(), 0u)
      << "a client saw an error or a torn response during the storm";
  EXPECT_GT(served.load(), 0u);
  const EngineStats mid = engine->stats();
  EXPECT_GE(mid.swap_attempts, 12u);

  // Calm after the storm: disarmed, the next swap must land first try.
  fault::DisarmAllFaults();
  const bool serving_base =
      engine->model().fingerprint() == wp_base_->fingerprint();
  auto final_swap = engine->Swap(serving_base ? bin_data_ : bin_base_);
  ASSERT_TRUE(final_swap.ok()) << final_swap.status().ToString();
  ExpectServedFromKnownGeneration(engine->Estimate(ProbeRequest()));
  ExpectNoTmpDroppings();
}

// ---------------------------------------------------------------------------
// Disarmed injector + default policy are bit-identical to pre-PR serving
// ---------------------------------------------------------------------------

TEST_F(FaultSweepTest, DisarmedAndDefaultPolicyAreBitIdentical) {
  ASSERT_FALSE(fault::Armed());
  // Saves with the injector linked in (disarmed) are byte-identical to the
  // fixture artifacts.
  const std::string again_bin = Track(TempPath(Prefix() + ".again.bin"));
  const std::string again_text = Track(TempPath(Prefix() + ".again.txt"));
  ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_data_, again_bin).ok());
  ASSERT_TRUE(core::SaveWeightFunction(*wp_data_, again_text).ok());
  EXPECT_EQ(ReadAll(again_bin), ReadAll(bin_data_));
  EXPECT_EQ(ReadAll(again_text), ReadAll(text_data_));

  // A default-policy engine swap behaves exactly like pre-policy serving:
  // publishes on the first attempt, runs no probes, retains no epochs.
  auto engine = OpenEngineOn(bin_base_, EngineOptions());
  ASSERT_NE(engine, nullptr);
  auto swapped = engine->Swap(bin_data_);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped.value(), 2u);
  ExpectServedFromKnownGeneration(engine->Estimate(ProbeRequest()));

  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.swap_attempts, 1u);
  EXPECT_EQ(stats.swap_retries, 0u);
  EXPECT_EQ(stats.probe_failures, 0u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(engine->rollback_depth(), 0u);
  auto rollback = engine->RollbackToPrevious();
  ASSERT_FALSE(rollback.ok());
  EXPECT_EQ(rollback.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace serving
}  // namespace pcde
