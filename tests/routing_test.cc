// Tests for the DFS stochastic router (Sec. 4.3 / Fig. 18): probability
// maximization under a travel-time budget, risk-aware path choice (the
// Fig. 1(a) scenario), pruning, and estimator interchangeability.
#include <gtest/gtest.h>

#include "baselines/methods.h"
#include "core/instantiation.h"
#include "hist/histogram_nd.h"
#include "roadnet/generators.h"
#include "routing/stochastic_router.h"
#include "traj/store.h"

namespace pcde {
namespace routing {
namespace {

using core::EstimateOptions;
using core::InstantiatedVariable;
using core::PathWeightFunction;
using core::TimeBinning;
using hist::Histogram1D;
using hist::HistogramND;
using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

/// The Fig. 1(a) scenario as a diamond graph:
///   s -> m1 -> t  ("P1", reliable: 48..56 min total)
///   s -> m2 -> t  ("P2", risky: usually 40..55, sometimes 65..80)
struct DiamondFixture {
  Graph g;
  VertexId s, m1, m2, t;
  EdgeId p1a, p1b, p2a, p2b;
  PathWeightFunction wp;

  DiamondFixture() : wp(BuildModel()) {}

 private:
  PathWeightFunction BuildModel() {
    s = g.AddVertex(0, 0);
    m1 = g.AddVertex(1000, 500);
    m2 = g.AddVertex(1000, -500);
    t = g.AddVertex(2000, 0);
    p1a = g.AddEdge(s, m1, 1200, 13.9).value();
    p1b = g.AddEdge(m1, t, 1200, 13.9).value();
    p2a = g.AddEdge(s, m2, 1200, 13.9).value();
    p2b = g.AddEdge(m2, t, 1200, 13.9).value();

    core::WeightFunctionBuilder builder{TimeBinning(30.0)};
    auto add_unit = [&](EdgeId e, Histogram1D h) {
      InstantiatedVariable v;
      v.path = Path({e});
      v.interval = core::kAllDayInterval;  // valid at any departure
      v.joint = HistogramND::FromHistogram1D(std::move(h));
      v.support = 0;
      v.from_speed_limit = true;
      builder.Add(std::move(v));
    };
    // P1 edges: 24..28 min each (reliable).
    const Histogram1D reliable =
        Histogram1D::Make({{24 * 60.0, 28 * 60.0, 1.0}}).value();
    add_unit(p1a, reliable);
    add_unit(p1b, reliable);
    // P2 edges: 90%: 20..27.5 min, 10%: 32.5..40 min.
    const Histogram1D risky =
        Histogram1D::Make({{20 * 60.0, 27.5 * 60.0, 0.9},
                           {32.5 * 60.0, 40 * 60.0, 0.1}})
            .value();
    add_unit(p2a, risky);
    add_unit(p2b, risky);
    return std::move(builder).Freeze();
  }
};

TEST(RouterTest, PrefersReliablePathUnderTightBudget) {
  DiamondFixture f;
  DfsStochasticRouter router(f.g, f.wp, EstimateOptions());
  // 60-minute budget: P1 always makes it; P2 misses when a slow mode hits.
  auto result = router.Route(f.s, f.t, 8 * 3600.0, 60 * 60.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().best_path, Path({f.p1a, f.p1b}));
  EXPECT_NEAR(result.value().best_probability, 1.0, 1e-9);
  EXPECT_EQ(result.value().candidate_paths, 2u);
}

TEST(RouterTest, PrefersFastPathUnderLooseRiskTradeoff) {
  DiamondFixture f;
  DfsStochasticRouter router(f.g, f.wp, EstimateOptions());
  // 50-minute budget: P1 can NEVER make it (min 48·… wait: P1 total is
  // 48..56 min, so P(<=50) ~ 0.2-ish); P2 makes it with ~0.81 when both
  // edges stay in the fast mode and partial credit otherwise.
  auto result = router.Route(f.s, f.t, 8 * 3600.0, 50 * 60.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().best_path, Path({f.p2a, f.p2b}));
  EXPECT_GT(result.value().best_probability, 0.5);
}

TEST(RouterTest, InfeasibleBudgetIsNotFound) {
  DiamondFixture f;
  DfsStochasticRouter router(f.g, f.wp, EstimateOptions());
  auto result = router.Route(f.s, f.t, 8 * 3600.0, 10 * 60.0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RouterTest, UnreachableDestination) {
  DiamondFixture f;
  const VertexId lonely = f.g.AddVertex(9999, 9999);
  DfsStochasticRouter router(f.g, f.wp, EstimateOptions());
  EXPECT_FALSE(router.Route(f.s, lonely, 0.0, 3600.0).ok());
}

TEST(RouterTest, TrivialAndInvalidQueries) {
  DiamondFixture f;
  DfsStochasticRouter router(f.g, f.wp, EstimateOptions());
  EXPECT_FALSE(router.Route(f.s, f.s, 0.0, 3600.0).ok());
  EXPECT_FALSE(router.Route(999, f.t, 0.0, 3600.0).ok());
}

TEST(RouterTest, ProbabilityMonotoneInBudget) {
  DiamondFixture f;
  DfsStochasticRouter router(f.g, f.wp, EstimateOptions());
  double prev = 0.0;
  for (double budget_min : {52.0, 55.0, 58.0, 62.0}) {
    auto result = router.Route(f.s, f.t, 8 * 3600.0, budget_min * 60.0);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().best_probability, prev - 1e-9);
    prev = result.value().best_probability;
  }
}

// On a real city with speed-limit fallbacks only, the router must find
// budget-feasible paths and pruning must keep the search bounded.
class CityRoutingTest : public ::testing::Test {
 protected:
  CityRoutingTest()
      : graph_(roadnet::MakeCity(roadnet::CityAConfig())),
        wp_(core::InstantiateWeightFunction(graph_, traj::TrajectoryStore(),
                                            core::HybridParams())) {}
  Graph graph_;
  PathWeightFunction wp_;
};

TEST_F(CityRoutingTest, FindsPathWithinGenerousBudget) {
  DfsStochasticRouter router(graph_, wp_, EstimateOptions());
  const VertexId from = 0;
  const VertexId to = 30;
  const double min_time =
      roadnet::ShortestPathCost(graph_, from, to, roadnet::FreeFlowWeight(graph_));
  ASSERT_LT(min_time, roadnet::kInfCost);
  auto result = router.Route(from, to, 8 * 3600.0, min_time * 1.3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().best_probability, 0.0);
  EXPECT_FALSE(result.value().best_path.empty());
  EXPECT_TRUE(roadnet::ValidatePath(graph_, result.value().best_path.edges()).ok());
}

TEST_F(CityRoutingTest, TighterBudgetPrunesHarder) {
  DfsStochasticRouter router(graph_, wp_, EstimateOptions());
  const VertexId from = 0;
  const VertexId to = 60;
  const double min_time =
      roadnet::ShortestPathCost(graph_, from, to, roadnet::FreeFlowWeight(graph_));
  auto tight = router.Route(from, to, 8 * 3600.0, min_time * 1.1);
  auto loose = router.Route(from, to, 8 * 3600.0, min_time * 1.6);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LT(tight.value().expansions, loose.value().expansions);
}

TEST_F(CityRoutingTest, ExpansionCapTruncatesGracefully) {
  RouterConfig config;
  config.max_expansions = 50;
  DfsStochasticRouter router(graph_, wp_, EstimateOptions(), config);
  const VertexId from = 0;
  const VertexId to = static_cast<VertexId>(graph_.NumVertices() - 1);
  const double min_time =
      roadnet::ShortestPathCost(graph_, from, to, roadnet::FreeFlowWeight(graph_));
  auto result = router.Route(from, to, 8 * 3600.0, min_time * 2.0);
  // Either a (possibly suboptimal) path was found before the cap, or the
  // cap fired without a result; both must be reported coherently.
  if (result.ok()) {
    EXPECT_LE(result.value().expansions, 50u);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  }
}

TEST_F(CityRoutingTest, EstimatorPoliciesInterchangeable) {
  const VertexId from = 5;
  const VertexId to = 40;
  const double min_time =
      roadnet::ShortestPathCost(graph_, from, to, roadnet::FreeFlowWeight(graph_));
  for (auto policy :
       {core::DecompositionPolicy::kCoarsest, core::DecompositionPolicy::kUnit,
        core::DecompositionPolicy::kPairwise}) {
    EstimateOptions options;
    options.policy = policy;
    options.rank_cap =
        policy == core::DecompositionPolicy::kUnit
            ? 1
            : (policy == core::DecompositionPolicy::kPairwise ? 2 : 0);
    DfsStochasticRouter router(graph_, wp_, options);
    auto result = router.Route(from, to, 8 * 3600.0, min_time * 1.25);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.value().best_probability, 0.0);
  }
}

}  // namespace
}  // namespace routing
}  // namespace pcde
