// Overload chaos harness (ISSUE 7), the deadline/admission counterpart of
// refresh_fault_test's swap storm: client threads hammer an engine with a
// mix of plain requests, tiny deadlines (tripping at entry and mid-sweep),
// pre-cancelled tokens, and batches, while a swapper alternates model
// generations (with corrupt attempts interleaved) and a small admission
// cap sheds load the whole time. The harness must observe:
//
//  * zero hangs — every request returns (the suite completes);
//  * zero unexpected statuses — only OK, kDeadlineExceeded, kCancelled,
//    kResourceExhausted ever surface;
//  * zero mixed epochs — every OK response ExactlyEquals the reference
//    answer of the one model named by its fingerprint, deadline pressure,
//    shedding, and swaps notwithstanding;
//  * zero stuck admission slots — inflight drains to 0 afterwards and the
//    engine serves normally.
//
// scripts/ci.sh runs this under ASan (leak check included).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/estimator.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "roadnet/shortest_path.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace serving {
namespace {

using core::HybridParams;
using core::PathWeightFunction;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

constexpr double kDepart = 8 * 3600.0;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class OverloadChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new traj::Dataset(traj::MakeDatasetA(1500));
    graph_ = dataset_->graph.get();
    HybridParams params;
    params.beta = 15;
    wp_base_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(), params));
    wp_data_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(dataset_->MatchedSlice(1.0)), params));
    ASSERT_NE(wp_base_->fingerprint(), wp_data_->fingerprint());
    artifact_base_ = TempPath("pcde_chaos_base." + std::to_string(::getpid()) +
                              ".bin");
    artifact_data_ = TempPath("pcde_chaos_data." + std::to_string(::getpid()) +
                              ".bin");
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_base_, artifact_base_).ok());
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_data_, artifact_data_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(artifact_base_.c_str());
    std::remove(artifact_data_.c_str());
    delete wp_data_;
    delete wp_base_;
    delete dataset_;
    wp_data_ = nullptr;
    wp_base_ = nullptr;
    dataset_ = nullptr;
    graph_ = nullptr;
  }

  static Path PathBetween(VertexId from, VertexId to) {
    auto p = roadnet::ShortestPath(*graph_, from, to,
                                   roadnet::FreeFlowWeight(*graph_));
    EXPECT_TRUE(p.ok());
    return p.ok() ? p.value() : Path();
  }

  static traj::Dataset* dataset_;
  static const Graph* graph_;
  static PathWeightFunction* wp_base_;
  static PathWeightFunction* wp_data_;
  static std::string artifact_base_;
  static std::string artifact_data_;
};

traj::Dataset* OverloadChaosTest::dataset_ = nullptr;
const Graph* OverloadChaosTest::graph_ = nullptr;
PathWeightFunction* OverloadChaosTest::wp_base_ = nullptr;
PathWeightFunction* OverloadChaosTest::wp_data_ = nullptr;
std::string OverloadChaosTest::artifact_base_;
std::string OverloadChaosTest::artifact_data_;

TEST_F(OverloadChaosTest, DeadlinesSheddingAndSwapsNeverHangOrMixEpochs) {
  constexpr size_t kClients = 4;
  constexpr size_t kEngineThreads = 2;
  constexpr int kMinSwaps = 8;

  // The engine under pressure: small admission cap (sheds for real under
  // kClients + batch fan-out), short bounded queue, tiny evicting cache
  // so entries churn across epochs.
  EngineOptions options;
  options.model_path = artifact_base_;
  options.graph = graph_;
  options.num_threads = kEngineThreads;
  options.query_cache_bytes = size_t{1} << 14;
  options.max_inflight_requests = 2;
  options.max_queue_depth = 2;
  options.queue_timeout_seconds = 0.002;
  auto opened = Engine::Open(std::move(options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Engine& engine = *opened.value();

  // Unpressured reference engines per generation: every OK answer the
  // chaos engine produces must ExactlyEqual the reference of the model
  // its fingerprint names — whatever deadlines/sheds/swaps were in flight.
  auto open_ref = [&](const std::string& artifact) {
    EngineOptions ref_options;
    ref_options.model_path = artifact;
    ref_options.graph = graph_;
    ref_options.num_threads = kEngineThreads;
    ref_options.query_cache_bytes = size_t{64} << 20;
    auto ref = Engine::Open(std::move(ref_options));
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    return ref.ok() ? std::move(ref).value() : nullptr;
  };
  auto ref_base = open_ref(artifact_base_);
  auto ref_data = open_ref(artifact_data_);
  ASSERT_NE(ref_base, nullptr);
  ASSERT_NE(ref_data, nullptr);

  std::vector<EstimateRequest> requests;
  for (auto [from, to] : {std::pair<VertexId, VertexId>{0, 30},
                          {5, 40},
                          {2, 61},
                          {7, 33}}) {
    EstimateRequest request;
    request.path = PathSpec::ExplicitPath(PathBetween(from, to));
    request.departure_time = kDepart;
    requests.push_back(std::move(request));
  }
  const double min_time = roadnet::ShortestPathCost(
      *graph_, 0, 30, roadnet::FreeFlowWeight(*graph_));
  RouteRequest route_request;
  route_request.from = 0;
  route_request.to = 30;
  route_request.departure_time = kDepart;
  route_request.budget_seconds = min_time * 1.3;

  std::unordered_map<uint64_t, std::vector<CostSummary>> ref_summaries;
  std::unordered_map<uint64_t, RouteResponse> ref_routes;
  for (auto* ref : {ref_base.get(), ref_data.get()}) {
    const uint64_t fp = ref->model().fingerprint();
    for (const EstimateRequest& request : requests) {
      auto response = ref->Estimate(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ref_summaries[fp].push_back(response.value().summary);
    }
    auto routed = ref->Route(route_request);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    ref_routes[fp] = std::move(routed).value();
  }

  std::atomic<bool> done{false};
  std::atomic<size_t> ok_served{0};
  std::atomic<size_t> deadline_hits{0};
  std::atomic<size_t> cancel_hits{0};
  std::atomic<size_t> shed_hits{0};
  std::atomic<size_t> unexpected{0};  // any status outside the contract
  std::atomic<size_t> mixed{0};       // OK answer matching no single epoch

  // Classify one estimate outcome; `ref_index` selects the reference
  // summary an OK answer must match (SIZE_MAX = skip the mixing check).
  auto classify = [&](const StatusOr<EstimateResponse>& response,
                      size_t ref_index) {
    if (response.ok()) {
      ++ok_served;
      if (ref_index == SIZE_MAX) return;
      const EstimateResponse& r = response.value();
      auto it = ref_summaries.find(r.model_fingerprint);
      if (it == ref_summaries.end() || r.epoch == 0 ||
          !r.summary.ExactlyEquals(it->second[ref_index])) {
        ++mixed;
      }
      return;
    }
    switch (response.status().code()) {
      case StatusCode::kDeadlineExceeded: ++deadline_hits; break;
      case StatusCode::kCancelled: ++cancel_hits; break;
      case StatusCode::kResourceExhausted: ++shed_hits; break;
      default: ++unexpected; break;
    }
  };

  // The timeout cycle: pre-expired, microseconds (trips mid-sweep at
  // varying checkpoints), and comfortably generous (must serve correctly).
  const double timeout_cycle[] = {1e-9, 2e-6, 5e-5, 1e-3, 30.0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      CancelToken tripped;
      tripped.Cancel();
      size_t round = 0;
      while (!done.load(std::memory_order_relaxed)) {
        ++round;
        // 1. Plain batch: per-request status under pressure; OK answers
        //    must match exactly one epoch's reference.
        auto batch = engine.EstimateBatch(requests);
        for (size_t i = 0; i < batch.size(); ++i) classify(batch[i], i);

        // 2. Deadline request, cycling trip points per client and round.
        EstimateRequest dead = requests[(c + round) % requests.size()];
        dead.timeout_seconds =
            timeout_cycle[(c + round) % (sizeof(timeout_cycle) /
                                         sizeof(timeout_cycle[0]))];
        classify(engine.Estimate(dead), (c + round) % requests.size());

        // 3. Pre-cancelled token: kCancelled (or shed before the token is
        //    even consulted) — never an answer.
        EstimateRequest cancelled = requests[round % requests.size()];
        cancelled.cancel = &tripped;
        auto cancel_response = engine.Estimate(cancelled);
        if (cancel_response.ok()) {
          ++unexpected;
        } else {
          classify(cancel_response, SIZE_MAX);
          if (cancel_response.status().code() != StatusCode::kCancelled &&
              cancel_response.status().code() !=
                  StatusCode::kResourceExhausted) {
            ++unexpected;
          }
        }

        // 4. Route with and without a tiny deadline.
        RouteRequest dead_route = route_request;
        dead_route.timeout_seconds = 1e-9;
        auto dr = engine.Route(dead_route);
        if (dr.ok() ||
            (dr.status().code() != StatusCode::kDeadlineExceeded &&
             dr.status().code() != StatusCode::kResourceExhausted)) {
          ++unexpected;
        } else if (dr.status().code() == StatusCode::kDeadlineExceeded) {
          ++deadline_hits;
        } else {
          ++shed_hits;
        }
        auto routed = engine.Route(route_request);
        if (routed.ok()) {
          const RouteResponse& r = routed.value();
          auto it = ref_routes.find(r.model_fingerprint);
          if (it == ref_routes.end() ||
              !(r.best_path == it->second.best_path) ||
              r.on_time_probability != it->second.on_time_probability) {
            ++mixed;
          }
        } else if (routed.status().code() != StatusCode::kResourceExhausted) {
          ++unexpected;
        } else {
          ++shed_hits;
        }
      }
    });
  }

  // The swapper: a corrupt attempt (header-checksum flip: never
  // short-circuits, always rejects) then a good swap, alternating
  // generations. Runs until the storm has provably exercised every
  // overload path.
  std::vector<char> corrupt_bytes = [&] {
    std::ifstream in(artifact_data_, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }();
  corrupt_bytes[16] = static_cast<char>(corrupt_bytes[16] ^ 0x5a);
  const std::string corrupt = TempPath(
      "pcde_chaos_bad." + std::to_string(::getpid()) + ".bin");
  {
    std::ofstream out(corrupt, std::ios::binary | std::ios::trunc);
    out.write(corrupt_bytes.data(),
              static_cast<std::streamsize>(corrupt_bytes.size()));
  }
  std::atomic<int> swaps{0};
  std::atomic<bool> swap_failed{false};
  std::thread swapper([&] {
    int s = 0;
    while (!done.load(std::memory_order_relaxed)) {
      if (engine.Swap(corrupt).ok()) swap_failed.store(true);
      const std::string& next =
          (s % 2 == 0) ? artifact_data_ : artifact_base_;
      if (!engine.Swap(next).ok()) swap_failed.store(true);
      ++s;
      swaps.store(s);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Run until every chaos ingredient has actually fired (deadline trips,
  // cancellations, sheds, >= kMinSwaps swaps) or the time cap expires —
  // the assertions below then report exactly which one never happened.
  const auto start = std::chrono::steady_clock::now();
  const auto cap = std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() - start < cap) {
    if (deadline_hits.load() > 0 && cancel_hits.load() > 0 &&
        shed_hits.load() > 0 && ok_served.load() > 0 &&
        swaps.load() >= kMinSwaps) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  done.store(true);
  for (std::thread& t : clients) t.join();
  swapper.join();
  std::remove(corrupt.c_str());

  EXPECT_FALSE(swap_failed.load());
  EXPECT_GE(swaps.load(), kMinSwaps);
  EXPECT_GT(ok_served.load(), 0u);
  EXPECT_GT(deadline_hits.load(), 0u);
  EXPECT_GT(cancel_hits.load(), 0u);
  EXPECT_GT(shed_hits.load(), 0u);
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(mixed.load(), 0u);

  // Every admission slot drained; the counters reconcile; the engine is
  // healthy afterwards.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_GT(stats.admitted, 0u);
  EXPECT_GT(stats.shed, 0u);
  EXPECT_GT(stats.deadline_exceeded, 0u);
  EXPECT_GT(stats.cancelled, 0u);
  EXPECT_LE(stats.inflight_highwater, 2u);  // the cap held throughout
  auto calm = engine.Estimate(requests[0]);
  ASSERT_TRUE(calm.ok()) << calm.status().ToString();
  auto it = ref_summaries.find(calm.value().model_fingerprint);
  ASSERT_NE(it, ref_summaries.end());
  EXPECT_TRUE(calm.value().summary.ExactlyEquals(it->second[0]));
}

}  // namespace
}  // namespace serving
}  // namespace pcde
