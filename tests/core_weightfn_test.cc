// Unit tests for the path weight function store W_P (Sec. 3.3): the
// build-side WeightFunctionBuilder and the frozen PathWeightFunction it
// compiles into.
#include <gtest/gtest.h>

#include "core/weight_function.h"
#include "hist/histogram_nd.h"

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;
using hist::HistogramND;
using roadnet::Path;

InstantiatedVariable MakeUnit(roadnet::EdgeId e, int32_t interval, double lo,
                              double hi, bool speed_limit = false,
                              size_t support = 40) {
  InstantiatedVariable v;
  v.path = Path({e});
  v.interval = interval;
  v.joint = HistogramND::FromHistogram1D(Histogram1D::Single(lo, hi));
  v.support = speed_limit ? 0 : support;
  v.from_speed_limit = speed_limit;
  return v;
}

InstantiatedVariable MakePair(roadnet::EdgeId a, roadnet::EdgeId b,
                              int32_t interval) {
  InstantiatedVariable v;
  v.path = Path({a, b});
  v.interval = interval;
  auto joint = HistogramND::Make(
      {{10.0, 20.0, 40.0}, {10.0, 30.0}},
      {{{0, 0}, 0.5}, {{1, 0}, 0.5}});
  v.joint = std::move(joint).value();
  v.support = 35;
  return v;
}

class WeightFunctionTest : public ::testing::Test {
 protected:
  WeightFunctionTest() : builder_(TimeBinning(30.0)) {}

  PathWeightFunction Freeze() { return std::move(builder_).Freeze(); }

  WeightFunctionBuilder builder_;
};

TEST_F(WeightFunctionTest, TimeBinningGrid) {
  const TimeBinning& b = builder_.binning();
  EXPECT_EQ(b.NumIntervals(), 48);
  EXPECT_EQ(b.IndexOf(0.0), 0);
  EXPECT_EQ(b.IndexOf(1799.0), 0);
  EXPECT_EQ(b.IndexOf(1800.0), 1);
  EXPECT_EQ(b.IndexOf(8 * 3600.0), 16);  // 8:00 -> interval 16
  EXPECT_EQ(b.IntervalOf(16), Interval(28800.0, 30600.0));
  const PathWeightFunction wp = Freeze();
  EXPECT_EQ(wp.binning().NumIntervals(), 48);
}

TEST_F(WeightFunctionTest, AddAndLookup) {
  builder_.Add(MakeUnit(3, 16, 20, 30));
  const PathWeightFunction wp = Freeze();
  EXPECT_EQ(wp.NumVariables(), 1u);
  const InstantiatedVariable* v = wp.Lookup(Path({3}), 16);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->rank(), 1u);
  EXPECT_EQ(v->id, 0u);
  EXPECT_EQ(wp.Lookup(Path({3}), 17), nullptr);
  EXPECT_EQ(wp.Lookup(Path({4}), 16), nullptr);
}

TEST_F(WeightFunctionTest, DuplicateAddReplaces) {
  builder_.Add(MakeUnit(3, 16, 20, 30));
  builder_.Add(MakeUnit(3, 16, 50, 60));
  const PathWeightFunction wp = Freeze();
  EXPECT_EQ(wp.NumVariables(), 1u);
  const InstantiatedVariable* v = wp.Lookup(Path({3}), 16);
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->joint.DimRange(0).lo, 50.0);
}

TEST_F(WeightFunctionTest, StartingAtListsAllRanksAndIntervals) {
  builder_.Add(MakeUnit(3, 16, 20, 30));
  builder_.Add(MakeUnit(3, 17, 25, 35));
  builder_.Add(MakePair(3, 4, 16));
  builder_.Add(MakeUnit(4, 16, 10, 15));
  const PathWeightFunction wp = Freeze();
  EXPECT_EQ(wp.StartingAt(3).size(), 3u);
  EXPECT_EQ(wp.StartingAt(4).size(), 1u);
  EXPECT_TRUE(wp.StartingAt(99).empty());
}

TEST_F(WeightFunctionTest, IdsFollowInsertionOrderAndListsPreserveIt) {
  builder_.Add(MakeUnit(0, 1, 20, 30));
  for (roadnet::EdgeId e = 1; e < 200; ++e) builder_.Add(MakeUnit(e, 1, 20, 30));
  builder_.Add(MakeUnit(0, 2, 40, 50));  // second variable on edge 0
  const PathWeightFunction wp = Freeze();
  ASSERT_EQ(wp.NumVariables(), 201u);
  for (size_t i = 0; i < wp.NumVariables(); ++i) {
    EXPECT_EQ(wp.variables()[i].id, i);
  }
  // Candidate lists preserve builder insertion order per edge.
  const VariableList at0 = wp.StartingAt(0);
  ASSERT_EQ(at0.size(), 2u);
  EXPECT_EQ(at0.front()->interval, 1);
  EXPECT_EQ(at0[1]->interval, 2);
  EXPECT_DOUBLE_EQ(at0.front()->joint.DimRange(0).lo, 20.0);
}

TEST_F(WeightFunctionTest, UnitVariablePrefersLargestOverlap) {
  builder_.Add(MakeUnit(5, 16, 20, 30));  // [8:00, 8:30)
  builder_.Add(MakeUnit(5, 17, 40, 50));  // [8:30, 9:00)
  const PathWeightFunction wp = Freeze();
  // Window mostly inside interval 17.
  const Interval window(8 * 3600.0 + 1700.0, 8 * 3600.0 + 2300.0);
  const InstantiatedVariable* v = wp.UnitVariable(5, window);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->interval, 17);
}

TEST_F(WeightFunctionTest, UnitVariablePointWindow) {
  builder_.Add(MakeUnit(5, 16, 20, 30));
  const PathWeightFunction wp = Freeze();
  const Interval at(8 * 3600.0 + 60.0, 8 * 3600.0 + 60.0);  // point in I16
  const InstantiatedVariable* v = wp.UnitVariable(5, at);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->interval, 16);
}

TEST_F(WeightFunctionTest, UnitVariableFallsBackToSpeedLimit) {
  builder_.Add(MakeUnit(5, kAllDayInterval, 18, 25, /*speed_limit=*/true));
  builder_.Add(MakeUnit(5, 16, 20, 30));
  const PathWeightFunction wp = Freeze();
  // A window with no overlap with interval 16 -> fallback.
  const Interval night(2 * 3600.0, 2 * 3600.0 + 600.0);
  const InstantiatedVariable* v = wp.UnitVariable(5, night);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->from_speed_limit);
  // A window inside interval 16 -> the data variable wins.
  const Interval morning(8 * 3600.0, 8 * 3600.0 + 600.0);
  EXPECT_FALSE(wp.UnitVariable(5, morning)->from_speed_limit);
}

TEST_F(WeightFunctionTest, UnitVariableNullWhenNothingKnown) {
  const PathWeightFunction wp = Freeze();
  EXPECT_EQ(wp.UnitVariable(77, Interval(0, 100)), nullptr);
}

TEST_F(WeightFunctionTest, CountByRankSeparatesSpeedLimits) {
  builder_.Add(MakeUnit(1, 16, 20, 30));
  builder_.Add(MakeUnit(2, kAllDayInterval, 10, 20, /*speed_limit=*/true));
  builder_.Add(MakePair(1, 2, 16));
  const PathWeightFunction wp = Freeze();
  const auto counts = wp.CountByRank(false);
  EXPECT_EQ(counts.at(1), 1u);
  EXPECT_EQ(counts.at(2), 1u);
  const auto with_sl = wp.CountByRank(true);
  EXPECT_EQ(with_sl.at(1), 2u);
}

TEST_F(WeightFunctionTest, CoverageCountsDistinctDataEdges) {
  builder_.Add(MakeUnit(1, 16, 20, 30));
  builder_.Add(MakeUnit(1, 17, 20, 30));                   // same edge again
  builder_.Add(MakePair(1, 2, 16));                        // adds edge 2
  builder_.Add(MakeUnit(9, kAllDayInterval, 5, 9, true));  // fallback: excluded
  const PathWeightFunction wp = Freeze();
  EXPECT_EQ(wp.NumCoveredEdges(), 2u);
}

TEST_F(WeightFunctionTest, MemoryAccounting) {
  builder_.Add(MakeUnit(1, 16, 20, 30));
  builder_.Add(MakePair(1, 2, 16));
  const PathWeightFunction wp = Freeze();
  EXPECT_GT(wp.MemoryUsageBytes(), 0u);
  EXPECT_LE(wp.MemoryUsageBytes(false), wp.MemoryUsageBytes(true));
  // The serving footprint covers at least the histogram payload.
  EXPECT_GE(wp.ResidentBytes(), wp.MemoryUsageBytes());
}

TEST_F(WeightFunctionTest, MeanEntropyByRankPoolsHighRanks) {
  builder_.Add(MakeUnit(1, 16, 20, 30));
  builder_.Add(MakePair(1, 2, 16));
  InstantiatedVariable deep;
  deep.path = Path({1, 2, 3, 4, 5});
  std::vector<std::vector<double>> bounds(5, {0.0, 1.0});
  deep.joint =
      hist::HistogramND::Make(bounds, {{{0, 0, 0, 0, 0}, 1.0}}).value();
  deep.interval = 16;
  deep.support = 31;
  builder_.Add(std::move(deep));
  const PathWeightFunction wp = Freeze();
  const auto entropy = wp.MeanEntropyByRank();
  EXPECT_TRUE(entropy.count(1));
  EXPECT_TRUE(entropy.count(2));
  EXPECT_TRUE(entropy.count(4));  // rank-5 pooled into ">=4"
  EXPECT_FALSE(entropy.count(5));
}

TEST_F(WeightFunctionTest, InternedSequencesAreShared) {
  // Same edge over many intervals: one interned sequence, many variables.
  for (int32_t i = 0; i < 10; ++i) builder_.Add(MakeUnit(7, i, 20, 30));
  builder_.Add(MakePair(7, 8, 3));
  const PathWeightFunction wp = Freeze();
  const WeightFunctionSections& s = wp.sections();
  EXPECT_EQ(s.num_vars, 11u);
  EXPECT_EQ(s.num_seqs, 2u);  // <7> and <7,8>
  EXPECT_EQ(s.TotalEdges(), 3u);
}

TEST_F(WeightFunctionTest, FingerprintIsContentBased) {
  WeightFunctionBuilder same(TimeBinning(30.0));
  WeightFunctionBuilder different(TimeBinning(30.0));
  builder_.Add(MakeUnit(3, 16, 20, 30));
  same.Add(MakeUnit(3, 16, 20, 30));
  different.Add(MakeUnit(3, 16, 20, 31));
  const PathWeightFunction a = Freeze();
  const PathWeightFunction b = std::move(same).Freeze();
  const PathWeightFunction c = std::move(different).Freeze();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());  // identical content
  EXPECT_NE(a.fingerprint(), c.fingerprint());  // different payload
  // Same content, different binning -> different model identity.
  WeightFunctionBuilder other_binning(TimeBinning(60.0));
  other_binning.Add(MakeUnit(3, 16, 20, 30));
  EXPECT_NE(a.fingerprint(), std::move(other_binning).Freeze().fingerprint());
}

TEST_F(WeightFunctionTest, FreezeIsNotCappedByArtifactEdgeLimit) {
  // kMaxArtifactEdgeId guards artifact *loads*; a live build over a graph
  // with larger edge ids must freeze and serve normally.
  const roadnet::EdgeId big = static_cast<roadnet::EdgeId>(kMaxArtifactEdgeId);
  builder_.Add(MakeUnit(big, 16, 20, 30));
  auto frozen = std::move(builder_).TryFreeze();
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  EXPECT_EQ(frozen.value().StartingAt(big).size(), 1u);
  EXPECT_NE(frozen.value().Lookup(Path({big}), 16), nullptr);
}

TEST_F(WeightFunctionTest, FromSectionsNullSectionsIsCleanError) {
  auto result = PathWeightFunction::FromSections(
      TimeBinning(30.0), nullptr, WeightFunctionSections{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WeightFunctionTest, TryFreezeRejectsRankDimMismatch) {
  InstantiatedVariable bad;
  bad.path = Path({1, 2});  // rank 2
  bad.joint = HistogramND::FromHistogram1D(Histogram1D::Single(1, 2));  // 1 dim
  bad.interval = 0;
  builder_.Add(std::move(bad));
  auto result = std::move(builder_).TryFreeze();
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace core
}  // namespace pcde
