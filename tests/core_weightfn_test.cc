// Unit tests for the path weight function store W_P (Sec. 3.3).
#include <gtest/gtest.h>

#include "core/weight_function.h"
#include "hist/histogram_nd.h"

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;
using hist::HistogramND;
using roadnet::Path;

InstantiatedVariable MakeUnit(roadnet::EdgeId e, int32_t interval, double lo,
                              double hi, bool speed_limit = false,
                              size_t support = 40) {
  InstantiatedVariable v;
  v.path = Path({e});
  v.interval = interval;
  v.joint = HistogramND::FromHistogram1D(Histogram1D::Single(lo, hi));
  v.support = speed_limit ? 0 : support;
  v.from_speed_limit = speed_limit;
  return v;
}

InstantiatedVariable MakePair(roadnet::EdgeId a, roadnet::EdgeId b,
                              int32_t interval) {
  InstantiatedVariable v;
  v.path = Path({a, b});
  v.interval = interval;
  auto joint = HistogramND::Make(
      {{10.0, 20.0, 40.0}, {10.0, 30.0}},
      {{{0, 0}, 0.5}, {{1, 0}, 0.5}});
  v.joint = std::move(joint).value();
  v.support = 35;
  return v;
}

class WeightFunctionTest : public ::testing::Test {
 protected:
  WeightFunctionTest() : wp_(TimeBinning(30.0)) {}
  PathWeightFunction wp_;
};

TEST_F(WeightFunctionTest, TimeBinningGrid) {
  const TimeBinning& b = wp_.binning();
  EXPECT_EQ(b.NumIntervals(), 48);
  EXPECT_EQ(b.IndexOf(0.0), 0);
  EXPECT_EQ(b.IndexOf(1799.0), 0);
  EXPECT_EQ(b.IndexOf(1800.0), 1);
  EXPECT_EQ(b.IndexOf(8 * 3600.0), 16);  // 8:00 -> interval 16
  EXPECT_EQ(b.IntervalOf(16), Interval(28800.0, 30600.0));
}

TEST_F(WeightFunctionTest, AddAndLookup) {
  wp_.Add(MakeUnit(3, 16, 20, 30));
  EXPECT_EQ(wp_.NumVariables(), 1u);
  const InstantiatedVariable* v = wp_.Lookup(Path({3}), 16);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->rank(), 1u);
  EXPECT_EQ(wp_.Lookup(Path({3}), 17), nullptr);
  EXPECT_EQ(wp_.Lookup(Path({4}), 16), nullptr);
}

TEST_F(WeightFunctionTest, DuplicateAddReplaces) {
  wp_.Add(MakeUnit(3, 16, 20, 30));
  wp_.Add(MakeUnit(3, 16, 50, 60));
  EXPECT_EQ(wp_.NumVariables(), 1u);
  const InstantiatedVariable* v = wp_.Lookup(Path({3}), 16);
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->joint.DimRange(0).lo, 50.0);
}

TEST_F(WeightFunctionTest, StartingAtListsAllRanksAndIntervals) {
  wp_.Add(MakeUnit(3, 16, 20, 30));
  wp_.Add(MakeUnit(3, 17, 25, 35));
  wp_.Add(MakePair(3, 4, 16));
  wp_.Add(MakeUnit(4, 16, 10, 15));
  EXPECT_EQ(wp_.StartingAt(3).size(), 3u);
  EXPECT_EQ(wp_.StartingAt(4).size(), 1u);
  EXPECT_TRUE(wp_.StartingAt(99).empty());
}

TEST_F(WeightFunctionTest, PointersStableAcrossManyAdds) {
  wp_.Add(MakeUnit(0, 1, 20, 30));
  const InstantiatedVariable* first = wp_.StartingAt(0).front();
  for (roadnet::EdgeId e = 1; e < 200; ++e) wp_.Add(MakeUnit(e, 1, 20, 30));
  EXPECT_EQ(wp_.StartingAt(0).front(), first);  // deque stability
  EXPECT_DOUBLE_EQ(first->joint.DimRange(0).lo, 20.0);
}

TEST_F(WeightFunctionTest, UnitVariablePrefersLargestOverlap) {
  wp_.Add(MakeUnit(5, 16, 20, 30));  // [8:00, 8:30)
  wp_.Add(MakeUnit(5, 17, 40, 50));  // [8:30, 9:00)
  // Window mostly inside interval 17.
  const Interval window(8 * 3600.0 + 1700.0, 8 * 3600.0 + 2300.0);
  const InstantiatedVariable* v = wp_.UnitVariable(5, window);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->interval, 17);
}

TEST_F(WeightFunctionTest, UnitVariablePointWindow) {
  wp_.Add(MakeUnit(5, 16, 20, 30));
  const Interval at(8 * 3600.0 + 60.0, 8 * 3600.0 + 60.0);  // point in I16
  const InstantiatedVariable* v = wp_.UnitVariable(5, at);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->interval, 16);
}

TEST_F(WeightFunctionTest, UnitVariableFallsBackToSpeedLimit) {
  wp_.Add(MakeUnit(5, kAllDayInterval, 18, 25, /*speed_limit=*/true));
  wp_.Add(MakeUnit(5, 16, 20, 30));
  // A window with no overlap with interval 16 -> fallback.
  const Interval night(2 * 3600.0, 2 * 3600.0 + 600.0);
  const InstantiatedVariable* v = wp_.UnitVariable(5, night);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->from_speed_limit);
  // A window inside interval 16 -> the data variable wins.
  const Interval morning(8 * 3600.0, 8 * 3600.0 + 600.0);
  EXPECT_FALSE(wp_.UnitVariable(5, morning)->from_speed_limit);
}

TEST_F(WeightFunctionTest, UnitVariableNullWhenNothingKnown) {
  EXPECT_EQ(wp_.UnitVariable(77, Interval(0, 100)), nullptr);
}

TEST_F(WeightFunctionTest, CountByRankSeparatesSpeedLimits) {
  wp_.Add(MakeUnit(1, 16, 20, 30));
  wp_.Add(MakeUnit(2, kAllDayInterval, 10, 20, /*speed_limit=*/true));
  wp_.Add(MakePair(1, 2, 16));
  const auto counts = wp_.CountByRank(false);
  EXPECT_EQ(counts.at(1), 1u);
  EXPECT_EQ(counts.at(2), 1u);
  const auto with_sl = wp_.CountByRank(true);
  EXPECT_EQ(with_sl.at(1), 2u);
}

TEST_F(WeightFunctionTest, CoverageCountsDistinctDataEdges) {
  wp_.Add(MakeUnit(1, 16, 20, 30));
  wp_.Add(MakeUnit(1, 17, 20, 30));                   // same edge again
  wp_.Add(MakePair(1, 2, 16));                        // adds edge 2
  wp_.Add(MakeUnit(9, kAllDayInterval, 5, 9, true));  // fallback: excluded
  EXPECT_EQ(wp_.NumCoveredEdges(), 2u);
}

TEST_F(WeightFunctionTest, MemoryAccounting) {
  wp_.Add(MakeUnit(1, 16, 20, 30));
  const size_t one = wp_.MemoryUsageBytes();
  wp_.Add(MakePair(1, 2, 16));
  EXPECT_GT(wp_.MemoryUsageBytes(), one);
  EXPECT_LE(wp_.MemoryUsageBytes(false), wp_.MemoryUsageBytes(true));
}

TEST_F(WeightFunctionTest, MeanEntropyByRankPoolsHighRanks) {
  wp_.Add(MakeUnit(1, 16, 20, 30));
  wp_.Add(MakePair(1, 2, 16));
  InstantiatedVariable deep;
  deep.path = Path({1, 2, 3, 4, 5});
  std::vector<std::vector<double>> bounds(5, {0.0, 1.0});
  deep.joint =
      hist::HistogramND::Make(bounds, {{{0, 0, 0, 0, 0}, 1.0}}).value();
  deep.interval = 16;
  deep.support = 31;
  wp_.Add(std::move(deep));
  const auto entropy = wp_.MeanEntropyByRank();
  EXPECT_TRUE(entropy.count(1));
  EXPECT_TRUE(entropy.count(2));
  EXPECT_TRUE(entropy.count(4));  // rank-5 pooled into ">=4"
  EXPECT_FALSE(entropy.count(5));
}

}  // namespace
}  // namespace core
}  // namespace pcde
