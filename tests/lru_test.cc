// Edge-case tests for the shared byte-budgeted LRU core (common/lru.h):
// degenerate budgets (zero bytes, entry exactly at budget), and the
// eviction-callback reentrancy guarantee — a callback that reenters
// Insert or Clear on the same Lru must see a consistent cache and must
// not invalidate the entry it was handed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/lru.h"

namespace pcde {
namespace {

TEST(LruTest, ZeroByteBudgetRejectsEveryNonEmptyEntry) {
  Lru<int, std::string> lru(0);
  EXPECT_FALSE(lru.Insert(1, "a", 1));
  EXPECT_EQ(lru.entries(), 0u);
  EXPECT_EQ(lru.bytes(), 0u);
  EXPECT_EQ(lru.Find(1), nullptr);

  // A zero-byte entry technically fits a zero-byte budget.
  EXPECT_TRUE(lru.Insert(2, "b", 0));
  EXPECT_EQ(lru.entries(), 1u);
  EXPECT_EQ(lru.bytes(), 0u);
  ASSERT_NE(lru.Find(2), nullptr);
  EXPECT_EQ(*lru.Find(2), "b");
}

TEST(LruTest, EntryExactlyAtBudgetIsAdmittedAloneAndEvictsPredecessors) {
  Lru<int, std::string> lru(10);

  // Exactly at budget: admitted, no eviction needed.
  EXPECT_TRUE(lru.Insert(1, "full", 10));
  EXPECT_EQ(lru.entries(), 1u);
  EXPECT_EQ(lru.bytes(), 10u);

  // A second exact-budget entry displaces the first entirely.
  size_t evictions = 0;
  lru.set_eviction_callback(
      [&](const int& key, std::string&, size_t bytes) {
        EXPECT_EQ(key, 1);
        EXPECT_EQ(bytes, 10u);
        ++evictions;
      });
  EXPECT_TRUE(lru.Insert(2, "next", 10));
  EXPECT_EQ(evictions, 1u);
  EXPECT_EQ(lru.entries(), 1u);
  EXPECT_EQ(lru.bytes(), 10u);
  EXPECT_EQ(lru.Find(1), nullptr);
  ASSERT_NE(lru.Find(2), nullptr);

  // One byte over budget is rejected outright and leaves state untouched.
  EXPECT_FALSE(lru.Insert(3, "huge", 11));
  EXPECT_EQ(lru.entries(), 1u);
  EXPECT_EQ(lru.bytes(), 10u);
  EXPECT_EQ(lru.Find(3), nullptr);
}

TEST(LruTest, EvictionOrderIsLeastRecentlyUsedAndNewestSurvives) {
  Lru<int, int> lru(3);
  std::vector<int> evicted;
  lru.set_eviction_callback(
      [&](const int& key, int&, size_t) { evicted.push_back(key); });
  ASSERT_TRUE(lru.Insert(1, 10, 1));
  ASSERT_TRUE(lru.Insert(2, 20, 1));
  ASSERT_TRUE(lru.Insert(3, 30, 1));
  ASSERT_NE(lru.Find(1), nullptr);  // refresh 1 so 2 is now the LRU victim

  ASSERT_TRUE(lru.Insert(4, 40, 2));  // needs two slots: evicts 2, then 3
  EXPECT_EQ(evicted, (std::vector<int>{2, 3}));
  ASSERT_NE(lru.Find(1), nullptr);
  ASSERT_NE(lru.Find(4), nullptr);
  EXPECT_EQ(lru.entries(), 2u);
  EXPECT_EQ(lru.bytes(), 3u);
}

TEST(LruTest, EvictionCallbackSeesDetachedEntry) {
  // The contract: when the callback runs, the victim is already gone from
  // the cache — not findable, its bytes released.
  Lru<int, std::string> lru(2);
  bool checked = false;
  lru.set_eviction_callback(
      [&](const int& key, std::string& value, size_t bytes) {
        EXPECT_EQ(key, 1);
        EXPECT_EQ(value, "old");
        EXPECT_EQ(bytes, 1u);
        EXPECT_EQ(lru.Find(1), nullptr);  // reentrant Find: already detached
        EXPECT_EQ(lru.bytes(), 2u);       // only the new entry's bytes remain
        EXPECT_EQ(lru.entries(), 1u);
        checked = true;
      });
  ASSERT_TRUE(lru.Insert(1, "old", 1));
  ASSERT_TRUE(lru.Insert(3, "new", 2));  // over budget: evicts 1
  EXPECT_TRUE(checked);
}

TEST(LruTest, ReentrantInsertFromEvictionCallbackIsSafe) {
  // The hazard this pins down: the callback reenters Insert on the same
  // Lru while an eviction is in flight. Before the detach-first fix the
  // victim's list node could be reallocated or double-erased; under ASan
  // this test would flag the use-after-free.
  Lru<int, std::string> lru(4);
  std::vector<int> evicted;
  bool reentered = false;
  lru.set_eviction_callback(
      [&](const int& key, std::string&, size_t) {
        evicted.push_back(key);
        if (!reentered) {
          reentered = true;
          // Reentrant insert large enough to trigger a nested eviction.
          EXPECT_TRUE(lru.Insert(100, "nested", 2));
        }
      });
  ASSERT_TRUE(lru.Insert(1, "a", 2));
  ASSERT_TRUE(lru.Insert(2, "b", 2));
  // Insert(3) overflows the budget and evicts 1; the callback's reentrant
  // Insert(100) is itself over budget and nests evictions of 2 and then 3
  // — the reentrant insert may displace the outer insert's own entry, so
  // the survival guarantee yields to consistency under reentrancy. What
  // must hold: no use-after-free, exact byte accounting, and every entry
  // reported exactly once.
  ASSERT_TRUE(lru.Insert(3, "c", 4));
  EXPECT_EQ(evicted, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(lru.entries(), 1u);
  EXPECT_EQ(lru.bytes(), 2u);
  EXPECT_EQ(lru.Find(3), nullptr);
  ASSERT_NE(lru.Find(100), nullptr);
  EXPECT_EQ(*lru.Find(100), "nested");
}

TEST(LruTest, ReentrantClearFromEvictionCallbackIsSafe) {
  Lru<int, int> lru(2);
  int callbacks = 0;
  lru.set_eviction_callback([&](const int&, int&, size_t) {
    ++callbacks;
    lru.Clear();  // wipe everything mid-eviction
  });
  ASSERT_TRUE(lru.Insert(1, 10, 1));
  ASSERT_TRUE(lru.Insert(2, 20, 1));
  ASSERT_TRUE(lru.Insert(3, 30, 2));  // triggers eviction of 1 → Clear()
  EXPECT_EQ(callbacks, 1);
  // Clear() wiped entry 3 as well (it was already linked in); the cache
  // ends empty and internally consistent.
  EXPECT_EQ(lru.entries(), 0u);
  EXPECT_EQ(lru.bytes(), 0u);
  EXPECT_EQ(lru.Find(3), nullptr);
  // And stays usable afterwards.
  EXPECT_TRUE(lru.Insert(4, 40, 1));
  ASSERT_NE(lru.Find(4), nullptr);
}

}  // namespace
}  // namespace pcde
