// Equivalence tests for the shared greedy merge (hist/greedy_merge.h)
// against the frozen full-rescan reference loop: both production
// strategies (blocked argmin and lazy pair heap) must reproduce the
// reference's merge sequence bit for bit on randomized sum sets —
// including exact cost ties, where the reference's first-minimum rule
// (smallest left index) is the contract. This pins the semantics of both
// hist::Compact and the chain sweeper's progressive compaction
// (ChainSweeper::CompactSums), which share this loop.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "hist/greedy_merge.h"

namespace pcde {
namespace hist {
namespace {

using Buckets = std::vector<Bucket>;

void ExpectBitIdentical(const Buckets& a, const Buckets& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].range.lo, b[i].range.lo) << "bucket " << i;
    EXPECT_EQ(a[i].range.hi, b[i].range.hi) << "bucket " << i;
    EXPECT_EQ(a[i].prob, b[i].prob) << "bucket " << i;
  }
}

/// Random disjoint sorted buckets with occasional gaps; probabilities are
/// arbitrary positive masses (the merge does not require normalization).
Buckets RandomBuckets(size_t n, Rng* rng) {
  Buckets out;
  out.reserve(n);
  double at = rng->Uniform(-50.0, 50.0);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Uniform(0.0, 1.0) < 0.3) at += rng->Uniform(0.01, 5.0);  // gap
    const double width = rng->Uniform(0.05, 4.0);
    out.emplace_back(at, at + width, rng->Uniform(0.01, 1.0));
    at += width;
  }
  return out;
}

TEST(GreedyMergeTest, BothStrategiesMatchRescanOnRandomizedSumSets) {
  Rng rng(20260730);
  GreedyMergeScratch scratch;
  for (int round = 0; round < 200; ++round) {
    const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 180));
    const size_t cap = 1 + static_cast<size_t>(
                               rng.UniformInt(0, static_cast<int64_t>(n)));
    const Buckets input = RandomBuckets(n, &rng);
    Buckets heap_merged = input;
    Buckets blocked_merged = input;
    Buckets rescan_merged = input;
    // Pin each production strategy explicitly so both are exercised on
    // every size, not just on their side of the dispatch threshold.
    GreedyMergeHeap(&heap_merged, cap, &scratch);
    GreedyMergeBlocked(&blocked_merged, cap, &scratch);
    GreedyMergeToCapRescan(&rescan_merged, cap);
    ExpectBitIdentical(heap_merged, rescan_merged);
    ExpectBitIdentical(blocked_merged, rescan_merged);
    EXPECT_LE(heap_merged.size(), cap);
  }
}

TEST(GreedyMergeTest, DispatchedMergeMatchesAcrossTheThreshold) {
  Rng rng(4242);
  GreedyMergeScratch scratch;
  for (size_t n : {kGreedyMergeHeapThreshold - 3,
                   kGreedyMergeHeapThreshold + 3}) {
    const Buckets input = RandomBuckets(n, &rng);
    Buckets dispatched = input;
    Buckets heap_merged = input;
    GreedyMergeToCap(&dispatched, 64, &scratch);
    GreedyMergeHeap(&heap_merged, 64, &scratch);
    ExpectBitIdentical(dispatched, heap_merged);
  }
}

TEST(GreedyMergeTest, ExactCostTiesBreakLikeTheRescan) {
  // Identical widths, probabilities, and spacing make every adjacent pair
  // cost exactly equal, so the whole run is decided by tie-breaking.
  GreedyMergeScratch scratch;
  for (size_t n : {2u, 3u, 8u, 33u, 100u}) {
    for (size_t cap = 1; cap < n; cap += (n > 16 ? 7 : 1)) {
      Buckets uniform;
      for (size_t i = 0; i < n; ++i) {
        uniform.emplace_back(static_cast<double>(i),
                             static_cast<double>(i) + 1.0, 0.25);
      }
      Buckets heap_merged = uniform;
      Buckets blocked_merged = uniform;
      Buckets rescan_merged = uniform;
      GreedyMergeHeap(&heap_merged, cap, &scratch);
      GreedyMergeBlocked(&blocked_merged, cap, &scratch);
      GreedyMergeToCapRescan(&rescan_merged, cap);
      ExpectBitIdentical(heap_merged, rescan_merged);
      ExpectBitIdentical(blocked_merged, rescan_merged);
    }
  }
}

TEST(GreedyMergeTest, NoOpWithinCapOrZeroCap) {
  Rng rng(7);
  const Buckets input = RandomBuckets(12, &rng);
  GreedyMergeScratch scratch;
  Buckets same_cap = input;
  GreedyMergeToCap(&same_cap, input.size(), &scratch);
  ExpectBitIdentical(same_cap, input);
  Buckets zero_cap = input;
  GreedyMergeToCap(&zero_cap, 0, &scratch);
  ExpectBitIdentical(zero_cap, input);
}

TEST(GreedyMergeTest, ScratchReuseAcrossSizesAndStrategies) {
  // One warm scratch serving shrinking and growing jobs — and alternating
  // strategies — must not leak state between runs (the sweeper reuses one
  // instance per thread).
  Rng rng(99);
  GreedyMergeScratch scratch;
  bool use_heap = false;
  for (size_t n : {120u, 3u, 60u, 2u, 90u}) {
    const Buckets input = RandomBuckets(n, &rng);
    Buckets merged = input;
    Buckets rescan_merged = input;
    if (use_heap) {
      GreedyMergeHeap(&merged, 2, &scratch);
    } else {
      GreedyMergeBlocked(&merged, 2, &scratch);
    }
    use_heap = !use_heap;
    GreedyMergeToCapRescan(&rescan_merged, 2);
    ExpectBitIdentical(merged, rescan_merged);
  }
}

}  // namespace
}  // namespace hist
}  // namespace pcde
