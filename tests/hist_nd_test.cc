// Unit tests for HistogramND: the multi-dimensional joint-distribution
// representation of Sec. 3.2, including the Fig. 7 joint -> marginal
// reduction and the Fig. 6 2-D histogram example.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "hist/histogram_nd.h"

namespace pcde {
namespace hist {
namespace {

using HyperBucket = HistogramND::HyperBucket;

HistogramND MustMake(std::vector<std::vector<double>> bounds,
                     std::vector<HyperBucket> buckets) {
  auto h = HistogramND::Make(std::move(bounds), std::move(buckets));
  EXPECT_TRUE(h.ok()) << h.status().ToString();
  return std::move(h).value();
}

/// The Fig. 7 joint distribution:
///   c_e1 in {[20,30), [30,50)}, c_e2 in {[20,40), [40,60)}
///   probs: 0.30 0.25 / 0.20 0.25.
HistogramND Fig7Joint() {
  return MustMake({{20, 30, 50}, {20, 40, 60}},
                  {{{0, 0}, 0.30}, {{1, 0}, 0.25}, {{0, 1}, 0.20},
                   {{1, 1}, 0.25}});
}

// ---------------------------------------------------------------------------
// Construction / validation
// ---------------------------------------------------------------------------

TEST(HistogramNDTest, MakeValidates) {
  EXPECT_FALSE(HistogramND::Make({}, {}).ok());
  EXPECT_FALSE(HistogramND::Make({{1.0}}, {}).ok());  // one boundary only
  // Index out of range.
  EXPECT_FALSE(HistogramND::Make({{0, 1}}, {{{3}, 1.0}}).ok());
  // Arity mismatch.
  EXPECT_FALSE(HistogramND::Make({{0, 1}, {0, 1}}, {{{0}, 1.0}}).ok());
  // Mass != 1.
  EXPECT_FALSE(HistogramND::Make({{0, 1}}, {{{0}, 0.4}}).ok());
  EXPECT_TRUE(HistogramND::Make({{0, 1}}, {{{0}, 1.0}}).ok());
}

TEST(HistogramNDTest, BoxLookup) {
  const HistogramND h = Fig7Joint();
  EXPECT_EQ(h.NumDims(), 2u);
  EXPECT_EQ(h.NumBuckets(), 4u);
  EXPECT_EQ(h.NumDimBuckets(0), 2u);
  const auto& hb = h.buckets().front();
  const Interval b0 = h.Box(hb, 0);
  EXPECT_GE(b0.width(), 10.0);
  EXPECT_EQ(h.DimRange(0), Interval(20, 50));
  EXPECT_EQ(h.DimRange(1), Interval(20, 60));
}

// ---------------------------------------------------------------------------
// Fig. 7: SumDistribution reproduces the paper's marginal exactly.
// ---------------------------------------------------------------------------

TEST(HistogramNDTest, Fig7SumDistributionExact) {
  const HistogramND joint = Fig7Joint();
  auto sum = joint.SumDistribution();
  ASSERT_TRUE(sum.ok());
  const Histogram1D& h = sum.value();
  ASSERT_EQ(h.NumBuckets(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket(0).range.lo, 40.0);
  EXPECT_DOUBLE_EQ(h.bucket(0).range.hi, 50.0);
  EXPECT_NEAR(h.bucket(0).prob, 0.1000, 5e-5);
  EXPECT_NEAR(h.bucket(1).prob, 0.1625, 5e-5);
  EXPECT_NEAR(h.bucket(2).prob, 0.2292, 5e-5);
  EXPECT_NEAR(h.bucket(3).prob, 0.3833, 5e-5);
  EXPECT_NEAR(h.bucket(4).prob, 0.1250, 5e-5);
  EXPECT_DOUBLE_EQ(h.bucket(4).range.hi, 110.0);
}

TEST(HistogramNDTest, MarginalsOfFig7) {
  const HistogramND joint = Fig7Joint();
  auto m0 = joint.Marginal1D(0);
  ASSERT_TRUE(m0.ok());
  EXPECT_NEAR(m0.value().Mass(Interval(20, 30)), 0.5, 1e-12);
  EXPECT_NEAR(m0.value().Mass(Interval(30, 50)), 0.5, 1e-12);
  auto m1 = joint.Marginal1D(1);
  ASSERT_TRUE(m1.ok());
  EXPECT_NEAR(m1.value().Mass(Interval(20, 40)), 0.55, 1e-12);
  EXPECT_NEAR(m1.value().Mass(Interval(40, 60)), 0.45, 1e-12);
}

// ---------------------------------------------------------------------------
// BuildFromSamples
// ---------------------------------------------------------------------------

TEST(HistogramNDTest, BuildFromSamplesRejectsBadInput) {
  AutoBucketOptions opt;
  EXPECT_FALSE(HistogramND::BuildFromSamples({}, opt).ok());
  EXPECT_FALSE(HistogramND::BuildFromSamples({{1.0}, {1.0, 2.0}}, opt).ok());
}

TEST(HistogramNDTest, BuildFromSamplesMassOne) {
  Rng rng(41);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Gaussian(50, 5);
    samples.push_back({a, a + rng.Gaussian(30, 3)});
  }
  AutoBucketOptions opt;
  auto h = HistogramND::BuildFromSamples(samples, opt);
  ASSERT_TRUE(h.ok());
  double total = 0;
  for (const auto& hb : h.value().buckets()) total += hb.prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(h.value().NumDims(), 2u);
}

TEST(HistogramNDTest, CorrelatedSamplesConcentrateOnDiagonal) {
  // Strongly correlated dims: off-diagonal hyper-buckets should carry
  // little mass — the dependence signal the hybrid graph preserves.
  Rng rng(42);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 500; ++i) {
    const bool slow = rng.Bernoulli(0.5);
    const double a = slow ? rng.Uniform(80, 100) : rng.Uniform(40, 60);
    const double b = slow ? rng.Uniform(80, 100) : rng.Uniform(40, 60);
    samples.push_back({a, b});
  }
  AutoBucketOptions opt;
  auto h = HistogramND::BuildFromSamples(samples, opt, 2);
  ASSERT_TRUE(h.ok());
  double diagonal = 0.0;
  for (const auto& hb : h.value().buckets()) {
    if (hb.idx[0] == hb.idx[1]) diagonal += hb.prob;
  }
  EXPECT_GT(diagonal, 0.95);
}

TEST(HistogramNDTest, FixedBucketCountHonored) {
  Rng rng(43);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 300; ++i) {
    samples.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  AutoBucketOptions opt;
  auto h = HistogramND::BuildFromSamples(samples, opt, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().NumDimBuckets(0), 3u);
  EXPECT_EQ(h.value().NumDimBuckets(1), 3u);
}

TEST(HistogramNDTest, MarginalMatchesColumnHistogram) {
  // The per-dimension marginal of the built joint must reproduce the
  // column's own V-Optimal histogram boundaries (construction invariant).
  Rng rng(44);
  std::vector<std::vector<double>> samples;
  std::vector<double> col0;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Bernoulli(0.5) ? rng.Uniform(10, 20) : rng.Uniform(60, 80);
    col0.push_back(a);
    samples.push_back({a, rng.Uniform(0, 10)});
  }
  AutoBucketOptions opt;
  auto joint = HistogramND::BuildFromSamples(samples, opt, 2);
  ASSERT_TRUE(joint.ok());
  auto marginal = joint.value().Marginal1D(0);
  ASSERT_TRUE(marginal.ok());
  auto direct = BuildStaticHistogram(col0, 2);
  ASSERT_TRUE(direct.ok());
  // Same total mass split across the two clusters.
  EXPECT_NEAR(marginal.value().Mass(Interval(0, 40)),
              direct.value().Mass(Interval(0, 40)), 1e-9);
}

// ---------------------------------------------------------------------------
// Marginalization over subsets
// ---------------------------------------------------------------------------

TEST(HistogramNDTest, MarginalOverDimsValidation) {
  const HistogramND joint = Fig7Joint();
  EXPECT_FALSE(joint.MarginalOverDims({}).ok());
  EXPECT_FALSE(joint.MarginalOverDims({5}).ok());
  EXPECT_FALSE(joint.MarginalOverDims({1, 0}).ok());  // must increase
  EXPECT_TRUE(joint.MarginalOverDims({0}).ok());
  EXPECT_TRUE(joint.MarginalOverDims({0, 1}).ok());
}

TEST(HistogramNDTest, MarginalOverAllDimsIsIdentity) {
  const HistogramND joint = Fig7Joint();
  auto m = joint.MarginalOverDims({0, 1});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().NumBuckets(), joint.NumBuckets());
  EXPECT_NEAR(m.value().DiscreteEntropy(), joint.DiscreteEntropy(), 1e-12);
}

TEST(HistogramNDTest, ThreeDimMarginalPair) {
  // Product of three independent fair coins over {[0,1),[1,2)}.
  std::vector<HyperBucket> bs;
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 0; b < 2; ++b) {
      for (uint32_t c = 0; c < 2; ++c) bs.push_back({{a, b, c}, 0.125});
    }
  }
  const HistogramND joint =
      MustMake({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}, std::move(bs));
  auto pair = joint.MarginalOverDims({0, 2});
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair.value().NumDims(), 2u);
  EXPECT_EQ(pair.value().NumBuckets(), 4u);
  for (const auto& hb : pair.value().buckets()) {
    EXPECT_NEAR(hb.prob, 0.25, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Entropy
// ---------------------------------------------------------------------------

TEST(HistogramNDTest, DiscreteEntropyOfUniformGrid) {
  std::vector<HyperBucket> bs;
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 0; b < 2; ++b) bs.push_back({{a, b}, 0.25});
  }
  const HistogramND h = MustMake({{0, 1, 2}, {0, 1, 2}}, std::move(bs));
  EXPECT_NEAR(h.DiscreteEntropy(), std::log(4.0), 1e-12);
}

TEST(HistogramNDTest, DifferentialEntropyAdditiveForProduct) {
  // h(X,Y) = h(X) + h(Y) for independent piecewise-uniform marginals.
  std::vector<HyperBucket> bs;
  const double px[2] = {0.3, 0.7};
  const double py[2] = {0.6, 0.4};
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 0; b < 2; ++b) bs.push_back({{a, b}, px[a] * py[b]});
  }
  const HistogramND h = MustMake({{0, 5, 20}, {0, 2, 10}}, std::move(bs));
  auto mx = h.Marginal1D(0);
  auto my = h.Marginal1D(1);
  ASSERT_TRUE(mx.ok());
  ASSERT_TRUE(my.ok());
  EXPECT_NEAR(h.DifferentialEntropy(),
              mx.value().DifferentialEntropy() + my.value().DifferentialEntropy(),
              1e-9);
}

TEST(HistogramNDTest, DependenceLowersJointEntropy) {
  // Perfectly correlated vs independent with identical marginals: the
  // correlated joint has lower entropy — the quantity behind Fig. 15.
  const HistogramND correlated =
      MustMake({{0, 1, 2}, {0, 1, 2}}, {{{0, 0}, 0.5}, {{1, 1}, 0.5}});
  std::vector<HyperBucket> ind;
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 0; b < 2; ++b) ind.push_back({{a, b}, 0.25});
  }
  const HistogramND independent =
      MustMake({{0, 1, 2}, {0, 1, 2}}, std::move(ind));
  EXPECT_LT(correlated.DifferentialEntropy(),
            independent.DifferentialEntropy());
}

// ---------------------------------------------------------------------------
// 1-D lift / conversions
// ---------------------------------------------------------------------------

TEST(HistogramNDTest, FromHistogram1DRoundTrip) {
  auto h1 = Histogram1D::Make({{0, 10, 0.5}, {20, 30, 0.5}});
  ASSERT_TRUE(h1.ok());
  const HistogramND lifted = HistogramND::FromHistogram1D(h1.value());
  EXPECT_EQ(lifted.NumDims(), 1u);
  auto back = lifted.Marginal1D(0);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back.value().Mass(Interval(0, 10)), 0.5, 1e-12);
  EXPECT_NEAR(back.value().Mass(Interval(20, 30)), 0.5, 1e-12);
  EXPECT_NEAR(back.value().Mass(Interval(10, 20)), 0.0, 1e-12);  // gap kept
}

TEST(HistogramNDTest, SumDistributionOf1DIsIdentity) {
  auto h1 = Histogram1D::Make({{5, 10, 0.25}, {10, 30, 0.75}});
  ASSERT_TRUE(h1.ok());
  const HistogramND lifted = HistogramND::FromHistogram1D(h1.value());
  auto sum = lifted.SumDistribution();
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum.value().Mean(), h1.value().Mean(), 1e-9);
  EXPECT_DOUBLE_EQ(sum.value().Min(), 5.0);
  EXPECT_DOUBLE_EQ(sum.value().Max(), 30.0);
}

TEST(HistogramNDTest, MinMaxSum) {
  const HistogramND joint = Fig7Joint();
  EXPECT_DOUBLE_EQ(joint.MinSum(), 40.0);
  EXPECT_DOUBLE_EQ(joint.MaxSum(), 110.0);
}

TEST(HistogramNDTest, MemoryAccounting) {
  const HistogramND joint = Fig7Joint();
  // 3 + 3 boundary doubles, 4 buckets x (2 dims x 2B + 8B prob).
  EXPECT_EQ(joint.MemoryUsageBytes(), 6 * 8 + 4 * (2 * 2 + 8));
}

}  // namespace
}  // namespace hist
}  // namespace pcde
