// Tests for the bottom-up instantiation of W_P (Secs. 3.1-3.2): beta
// thresholding, prefix pruning, speed-limit fallbacks, and rank growth
// with data volume (the Fig. 9 / Fig. 10 mechanics).
#include <gtest/gtest.h>

#include "core/instantiation.h"
#include "roadnet/generators.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace core {
namespace {

using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;
using traj::MatchedTrajectory;
using traj::TrajectoryStore;

/// A chain graph a-b-c-d-e-f with edges e0..e4.
struct ChainGraph {
  Graph g;
  std::vector<EdgeId> edges;
  ChainGraph() {
    VertexId prev = g.AddVertex(0, 0);
    for (int i = 1; i <= 5; ++i) {
      const VertexId v = g.AddVertex(i * 100.0, 0);
      edges.push_back(g.AddEdge(prev, v, 100, 13.9).value());
      prev = v;
    }
  }
};

MatchedTrajectory MakeTrip(const std::vector<EdgeId>& edges, double depart_s,
                           double per_edge_cost) {
  MatchedTrajectory t;
  t.path = Path(edges);
  double at = depart_s;
  for (size_t i = 0; i < edges.size(); ++i) {
    t.edge_enter_times.push_back(at);
    t.edge_travel_seconds.push_back(per_edge_cost);
    t.edge_emission_grams.push_back(per_edge_cost * 2);
    at += per_edge_cost;
  }
  return t;
}

HybridParams SmallBetaParams(size_t beta = 5) {
  HybridParams p;
  p.beta = beta;
  return p;
}

TEST(InstantiationTest, SpeedLimitFallbackCoversEveryEdge) {
  ChainGraph cg;
  TrajectoryStore store;  // empty: no data at all
  InstantiationStats stats;
  const PathWeightFunction wp =
      InstantiateWeightFunction(cg.g, store, SmallBetaParams(), &stats);
  EXPECT_EQ(stats.unit_from_trajectories, 0u);
  EXPECT_EQ(stats.unit_from_speed_limit, cg.g.NumEdges());
  EXPECT_EQ(stats.joint_variables, 0u);
  for (EdgeId e : cg.edges) {
    const InstantiatedVariable* v =
        wp.UnitVariable(e, Interval(8 * 3600.0, 8 * 3600.0));
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->from_speed_limit);
    // Fallback centered on the free-flow time.
    const double fft = cg.g.edge(e).FreeFlowSeconds();
    EXPECT_LT(v->joint.DimRange(0).lo, fft);
    EXPECT_GT(v->joint.DimRange(0).hi, fft);
  }
}

TEST(InstantiationTest, BetaThresholdGatesUnitVariables) {
  ChainGraph cg;
  TrajectoryStore store;
  const double depart = 8 * 3600.0;
  // Edge 0: exactly beta trips; edge 1 (as start): beta - 1 trips.
  for (int i = 0; i < 5; ++i) store.Add(MakeTrip({cg.edges[0]}, depart + i, 20));
  for (int i = 0; i < 4; ++i) store.Add(MakeTrip({cg.edges[1]}, depart + i, 25));
  const PathWeightFunction wp =
      InstantiateWeightFunction(cg.g, store, SmallBetaParams(5));
  const TimeBinning binning(30.0);
  const int32_t interval = binning.IndexOf(depart);
  EXPECT_NE(wp.Lookup(Path({cg.edges[0]}), interval), nullptr);
  EXPECT_EQ(wp.Lookup(Path({cg.edges[1]}), interval), nullptr);
}

TEST(InstantiationTest, QualifiedCountsArePerInterval) {
  ChainGraph cg;
  TrajectoryStore store;
  // 3 trips at 8:00 and 3 at 9:00: neither interval reaches beta=5 even
  // though the edge has 6 total.
  for (int i = 0; i < 3; ++i) {
    store.Add(MakeTrip({cg.edges[0]}, 8 * 3600.0 + i, 20));
    store.Add(MakeTrip({cg.edges[0]}, 9 * 3600.0 + i, 20));
  }
  const PathWeightFunction wp =
      InstantiateWeightFunction(cg.g, store, SmallBetaParams(5));
  EXPECT_EQ(wp.CountByRank(false).count(1), 0u);
}

TEST(InstantiationTest, JointVariablesForPopularPaths) {
  ChainGraph cg;
  TrajectoryStore store;
  const double depart = 8 * 3600.0;
  const std::vector<EdgeId> full(cg.edges.begin(), cg.edges.begin() + 3);
  for (int i = 0; i < 8; ++i) store.Add(MakeTrip(full, depart + i * 10, 30));
  InstantiationStats stats;
  const PathWeightFunction wp =
      InstantiateWeightFunction(cg.g, store, SmallBetaParams(5), &stats);
  const TimeBinning binning(30.0);
  const int32_t interval = binning.IndexOf(depart);
  // All sub-paths of the 3-edge path are instantiated for this interval.
  EXPECT_NE(wp.Lookup(Path({full[0], full[1]}), interval), nullptr);
  EXPECT_NE(wp.Lookup(Path({full[1], full[2]}), interval), nullptr);
  EXPECT_NE(wp.Lookup(Path(full), interval), nullptr);
  const auto counts = wp.CountByRank(false);
  EXPECT_EQ(counts.at(1), 3u);
  EXPECT_EQ(counts.at(2), 2u);
  EXPECT_EQ(counts.at(3), 1u);
  EXPECT_EQ(stats.joint_variables, 3u);
}

TEST(InstantiationTest, SupportRecordsQualifiedCount) {
  ChainGraph cg;
  TrajectoryStore store;
  const double depart = 10 * 3600.0;
  const std::vector<EdgeId> pair(cg.edges.begin(), cg.edges.begin() + 2);
  for (int i = 0; i < 7; ++i) store.Add(MakeTrip(pair, depart + i, 30));
  const PathWeightFunction wp =
      InstantiateWeightFunction(cg.g, store, SmallBetaParams(5));
  const TimeBinning binning(30.0);
  const InstantiatedVariable* v =
      wp.Lookup(Path(pair), binning.IndexOf(depart));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->support, 7u);
  EXPECT_EQ(v->joint.NumDims(), 2u);
}

TEST(InstantiationTest, MaxRankCapsGrowth) {
  ChainGraph cg;
  TrajectoryStore store;
  const double depart = 8 * 3600.0;
  for (int i = 0; i < 10; ++i) store.Add(MakeTrip(cg.edges, depart + i, 30));
  HybridParams params = SmallBetaParams(5);
  params.max_instantiated_rank = 3;
  const PathWeightFunction wp = InstantiateWeightFunction(cg.g, store, params);
  const auto counts = wp.CountByRank(false);
  EXPECT_TRUE(counts.count(3));
  EXPECT_FALSE(counts.count(4));
  EXPECT_FALSE(counts.count(5));
}

TEST(InstantiationTest, WindowEntryTimesUseSubPathEntry) {
  // A trajectory entering edge 1 in a *different* interval than edge 0:
  // the sub-path <e1> counts toward the later interval.
  ChainGraph cg;
  TrajectoryStore store;
  const double depart = 8 * 3600.0 + 1700.0;  // edge 1 entered after 8:30
  for (int i = 0; i < 6; ++i) {
    store.Add(MakeTrip({cg.edges[0], cg.edges[1]}, depart + i, 200.0));
  }
  const PathWeightFunction wp =
      InstantiateWeightFunction(cg.g, store, SmallBetaParams(5));
  const TimeBinning binning(30.0);
  EXPECT_NE(wp.Lookup(Path({cg.edges[0]}), binning.IndexOf(depart)), nullptr);
  EXPECT_NE(wp.Lookup(Path({cg.edges[1]}), binning.IndexOf(depart + 200.0)),
            nullptr);
  EXPECT_EQ(wp.Lookup(Path({cg.edges[1]}), binning.IndexOf(depart)), nullptr);
}

TEST(InstantiationTest, JointCapturesCorrelation) {
  // Trips alternate between "all fast" and "all slow": the pair variable
  // must place (nearly) all mass on the diagonal.
  ChainGraph cg;
  TrajectoryStore store;
  const double depart = 8 * 3600.0;
  const std::vector<EdgeId> pair(cg.edges.begin(), cg.edges.begin() + 2);
  for (int i = 0; i < 20; ++i) {
    const double cost = i % 2 == 0 ? 20.0 : 80.0;
    store.Add(MakeTrip(pair, depart + i, cost));
  }
  const PathWeightFunction wp =
      InstantiateWeightFunction(cg.g, store, SmallBetaParams(10));
  const TimeBinning binning(30.0);
  const InstantiatedVariable* v =
      wp.Lookup(Path(pair), binning.IndexOf(depart));
  ASSERT_NE(v, nullptr);
  // Both dims bimodal; joint concentrated on two diagonal hyper-buckets.
  double diag = 0.0;
  for (const auto& hb : v->joint.buckets()) {
    if (hb.idx[0] == hb.idx[1]) diag += hb.prob;
  }
  EXPECT_GT(diag, 0.99);
}

TEST(InstantiationTest, RanksGrowWithDataVolume) {
  // The Fig. 10 effect: more trajectories => more and higher-rank
  // variables.
  traj::Dataset ds = traj::MakeDatasetA(4000);
  HybridParams params;
  params.beta = 20;
  TrajectoryStore quarter(ds.MatchedSlice(0.25));
  TrajectoryStore full(ds.MatchedSlice(1.0));
  const PathWeightFunction wp_quarter =
      InstantiateWeightFunction(*ds.graph, quarter, params);
  const PathWeightFunction wp_full =
      InstantiateWeightFunction(*ds.graph, full, params);
  size_t total_quarter = 0, total_full = 0, high_quarter = 0, high_full = 0;
  for (const auto& [rank, count] : wp_quarter.CountByRank(false)) {
    total_quarter += count;
    if (rank >= 2) high_quarter += count;
  }
  for (const auto& [rank, count] : wp_full.CountByRank(false)) {
    total_full += count;
    if (rank >= 2) high_full += count;
  }
  EXPECT_GT(total_full, total_quarter);
  EXPECT_GE(high_full, high_quarter);
  EXPECT_GT(high_full, 0u);
}

TEST(InstantiationTest, StatsTimerPopulated) {
  ChainGraph cg;
  TrajectoryStore store;
  InstantiationStats stats;
  InstantiateWeightFunction(cg.g, store, SmallBetaParams(), &stats);
  EXPECT_GE(stats.build_seconds, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace pcde
