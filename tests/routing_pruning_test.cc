// Tests for the opt-in DFS pruners (routing/pruning.h, routing/frontier.h):
// quality parity with the plain search (exact, per the sequential
// determinism contract), per-pruner counters, strided expansion-budget
// semantics, dominance machinery, and the serving::Engine surface.
#include <gtest/gtest.h>

#include <vector>

#include "common/cancel_token.h"
#include "core/instantiation.h"
#include "hist/histogram_nd.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "routing/frontier.h"
#include "routing/stochastic_router.h"
#include "serving/engine.h"
#include "traj/store.h"

namespace pcde {
namespace routing {
namespace {

using core::EstimateOptions;
using core::InstantiatedVariable;
using core::PathWeightFunction;
using core::TimeBinning;
using hist::Histogram1D;
using hist::HistogramND;
using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

// ---------------------------------------------------------------------------
// CdfSketch / DominanceFrontier unit tests.

std::vector<std::pair<double, double>> Points(
    std::initializer_list<std::pair<double, double>> pts) {
  return std::vector<std::pair<double, double>>(pts);
}

TEST(CdfSketchTest, AtIsRightContinuousStepFunction) {
  const CdfSketch s =
      CdfSketch::FromPoints(Points({{10.0, 0.25}, {20.0, 0.75}}), 16, true);
  EXPECT_EQ(s.At(9.0), 0.0);
  EXPECT_EQ(s.At(10.0), 0.25);
  EXPECT_EQ(s.At(19.9), 0.25);
  EXPECT_EQ(s.At(20.0), 1.0);
  EXPECT_EQ(s.At(1e9), 1.0);
}

TEST(CdfSketchTest, CoalescesEqualCosts) {
  const CdfSketch s = CdfSketch::FromPoints(
      Points({{5.0, 0.5}, {5.0, 0.25}, {7.0, 0.25}}), 16, true);
  EXPECT_EQ(s.At(5.0), 0.75);
  EXPECT_EQ(s.At(7.0), 1.0);
}

TEST(CdfSketchTest, CompressionIsDirectionAware) {
  // 100 distinct points squeezed into 4 bins: the optimistic sketch may
  // only move mass to cheaper costs (CDF >= exact), the pessimistic one
  // only to costlier costs (CDF <= exact).
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 100; ++i) {
    pts.emplace_back(100.0 + i, 0.01);
  }
  const CdfSketch opt = CdfSketch::FromPoints(pts, 4, /*round_down=*/true);
  const CdfSketch pes = CdfSketch::FromPoints(pts, 4, /*round_down=*/false);
  for (double x : {100.0, 120.0, 150.0, 180.0, 199.0, 250.0}) {
    double exact = 0.0;
    for (const auto& p : pts) {
      if (p.first <= x) exact += p.second;
    }
    EXPECT_GE(opt.At(x), exact - 1e-12) << "x=" << x;
    EXPECT_LE(pes.At(x), exact + 1e-12) << "x=" << x;
  }
}

TEST(CdfSketchTest, DominatesEverywhere) {
  const CdfSketch fast =
      CdfSketch::FromPoints(Points({{10.0, 1.0}}), 16, false);
  const CdfSketch slow =
      CdfSketch::FromPoints(Points({{20.0, 1.0}}), 16, true);
  const CdfSketch mixed =
      CdfSketch::FromPoints(Points({{5.0, 0.5}, {30.0, 0.5}}), 16, true);
  EXPECT_TRUE(fast.DominatesEverywhere(slow));
  EXPECT_FALSE(slow.DominatesEverywhere(fast));
  // `mixed` is ahead of `fast` below 10 but behind at [10, 30): neither
  // dominates.
  EXPECT_FALSE(fast.DominatesEverywhere(mixed));
  EXPECT_FALSE(mixed.DominatesEverywhere(fast));
  EXPECT_TRUE(fast.DominatesEverywhere(fast));
}

TEST(DominanceFrontierTest, SubsetAndCapSemantics) {
  EXPECT_TRUE(DominanceFrontier::IsSubset({1, 3}, {0, 1, 2, 3}));
  EXPECT_TRUE(DominanceFrontier::IsSubset({}, {0, 1}));
  EXPECT_FALSE(DominanceFrontier::IsSubset({1, 4}, {0, 1, 2, 3}));
  EXPECT_FALSE(DominanceFrontier::IsSubset({0, 1}, {1}));

  DominanceFrontier frontier(1);
  const CdfSketch fast =
      CdfSketch::FromPoints(Points({{10.0, 1.0}}), 16, false);
  const CdfSketch slow =
      CdfSketch::FromPoints(Points({{20.0, 1.0}}), 16, true);
  frontier.Insert(7, fast, {0, 7});
  // Dominated: stored visited {0,7} is a subset and fast dominates slow.
  EXPECT_TRUE(frontier.IsDominated(7, slow, {0, 3, 7}));
  // Different vertex, or visited set missing a stored vertex: no cut.
  EXPECT_FALSE(frontier.IsDominated(8, slow, {0, 3, 8}));
  EXPECT_FALSE(frontier.IsDominated(7, slow, {3, 7}));
  // Cap of 1 reached: further inserts are dropped, lookups still work.
  frontier.Insert(7, fast, {7});
  EXPECT_FALSE(frontier.IsDominated(7, slow, {3, 7}));
}

// ---------------------------------------------------------------------------
// Search-quality parity on a real city graph.

class CityPruningTest : public ::testing::Test {
 protected:
  CityPruningTest()
      : graph_(roadnet::MakeCity(roadnet::CityAConfig())),
        wp_(core::InstantiateWeightFunction(graph_, traj::TrajectoryStore(),
                                            core::HybridParams())) {}

  double MinTime(VertexId from, VertexId to) const {
    return roadnet::ShortestPathCost(graph_, from, to,
                                     roadnet::FreeFlowWeight(graph_));
  }

  Graph graph_;
  PathWeightFunction wp_;
};

PruningOptions AllPruners() {
  PruningOptions p;
  p.incumbent = true;
  p.dominance = true;
  p.cheap_first = true;
  return p;
}

TEST_F(CityPruningTest, EveryPrunerComboMatchesPlainExactly) {
  // Sequential determinism contract: with num_threads == 1, any pruner
  // combination returns exactly the same (path, probability) as the plain
  // search — pruned candidates provably cannot beat the final best.
  struct Combo {
    const char* name;
    PruningOptions prune;
  };
  std::vector<Combo> combos;
  combos.push_back({"none", PruningOptions()});
  {
    PruningOptions p;
    p.incumbent = true;
    combos.push_back({"incumbent", p});
  }
  {
    PruningOptions p;
    p.dominance = true;
    combos.push_back({"dominance", p});
  }
  {
    PruningOptions p;
    p.cheap_first = true;
    combos.push_back({"cheap_first", p});
  }
  combos.push_back({"all", AllPruners()});

  const std::vector<std::pair<VertexId, VertexId>> ods = {
      {0, 30}, {5, 40}, {0, 60}};
  for (const auto& od : ods) {
    for (double slack : {1.1, 1.3}) {
      const double budget = MinTime(od.first, od.second) * slack;
      RouterConfig plain_config;
      plain_config.num_threads = 1;
      DfsStochasticRouter plain(graph_, wp_, EstimateOptions(), plain_config);
      auto base = plain.Route(od.first, od.second, 8 * 3600.0, budget);
      ASSERT_TRUE(base.ok()) << base.status().ToString();
      ASSERT_FALSE(base.value().truncated);
      for (const Combo& combo : combos) {
        RouterConfig config;
        config.num_threads = 1;
        config.pruning = combo.prune;
        DfsStochasticRouter pruned(graph_, wp_, EstimateOptions(), config);
        auto result = pruned.Route(od.first, od.second, 8 * 3600.0, budget);
        ASSERT_TRUE(result.ok())
            << combo.name << ": " << result.status().ToString();
        SCOPED_TRACE(std::string(combo.name) + " od=" +
                     std::to_string(od.first) + "->" +
                     std::to_string(od.second) + " slack=" +
                     std::to_string(slack));
        EXPECT_GE(result.value().best_probability,
                  base.value().best_probability);
        EXPECT_EQ(result.value().best_probability,
                  base.value().best_probability);
        if (!combo.prune.cheap_first) {
          // Incumbent and dominance cannot cut the optimum, so the exact
          // path survives. Cheap-first reorders exploration, which may
          // resolve an exact probability tie to a different (equally
          // good) path — only the probability is contractual there.
          EXPECT_EQ(result.value().best_path, base.value().best_path);
        } else {
          EXPECT_TRUE(
              roadnet::ValidatePath(graph_, result.value().best_path.edges())
                  .ok());
        }
        // Pruners only ever remove work.
        EXPECT_LE(result.value().expansions, base.value().expansions);
        EXPECT_LE(result.value().estimator_clones,
                  base.value().estimator_clones);
        if (!combo.prune.any()) {
          // Defaults-off config is the plain search bit for bit.
          EXPECT_EQ(result.value().expansions, base.value().expansions);
          EXPECT_EQ(result.value().candidate_paths,
                    base.value().candidate_paths);
          EXPECT_EQ(result.value().estimator_clones,
                    base.value().estimator_clones);
          EXPECT_EQ(result.value().incumbent_pruned, 0u);
          EXPECT_EQ(result.value().dominance_pruned, 0u);
        }
      }
    }
  }
}

TEST_F(CityPruningTest, ParallelPrunedPreservesProbability) {
  const VertexId from = 0;
  const VertexId to = 30;
  const double budget = MinTime(from, to) * 1.3;
  RouterConfig plain_config;
  plain_config.num_threads = 1;
  DfsStochasticRouter plain(graph_, wp_, EstimateOptions(), plain_config);
  auto base = plain.Route(from, to, 8 * 3600.0, budget);
  ASSERT_TRUE(base.ok());

  RouterConfig config;
  config.num_threads = 4;
  config.pruning = AllPruners();
  DfsStochasticRouter pruned(graph_, wp_, EstimateOptions(), config);
  for (int rep = 0; rep < 3; ++rep) {
    auto result = pruned.Route(from, to, 8 * 3600.0, budget);
    ASSERT_TRUE(result.ok());
    // The shared incumbent races across branches, but the probability is
    // preserved exactly (only exact ties may pick another path).
    EXPECT_EQ(result.value().best_probability, base.value().best_probability);
    EXPECT_TRUE(
        roadnet::ValidatePath(graph_, result.value().best_path.edges()).ok());
  }
}

TEST_F(CityPruningTest, StridedBudgetMatchesPerNodeCount) {
  const VertexId from = 0;
  const VertexId to = 30;
  const double budget = MinTime(from, to) * 1.3;
  std::vector<RouteResult> results;
  for (size_t stride : {size_t{1}, size_t{64}, size_t{4096}}) {
    RouterConfig config;
    config.num_threads = 1;
    config.expansion_stride = stride;
    DfsStochasticRouter router(graph_, wp_, EstimateOptions(), config);
    auto result = router.Route(from, to, 8 * 3600.0, budget);
    ASSERT_TRUE(result.ok()) << "stride=" << stride;
    ASSERT_FALSE(result.value().truncated);
    results.push_back(std::move(result).value());
  }
  // Reserved-but-unused slots are never counted: every stride reports the
  // identical per-node expansion tally and identical results.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].expansions, results[0].expansions);
    EXPECT_EQ(results[i].best_probability, results[0].best_probability);
    EXPECT_EQ(results[i].best_path, results[0].best_path);
    EXPECT_EQ(results[i].candidate_paths, results[0].candidate_paths);
  }
}

TEST_F(CityPruningTest, TruncationKeepsExpansionInvariant) {
  for (bool with_pruning : {false, true}) {
    RouterConfig config;
    config.max_expansions = 50;
    config.num_threads = 1;
    if (with_pruning) config.pruning = AllPruners();
    DfsStochasticRouter router(graph_, wp_, EstimateOptions(), config);
    const VertexId from = 0;
    const VertexId to = static_cast<VertexId>(graph_.NumVertices() - 1);
    auto result = router.Route(from, to, 8 * 3600.0, MinTime(from, to) * 2.0);
    if (result.ok()) {
      EXPECT_LE(result.value().expansions, 50u);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
    }
  }
}

TEST_F(CityPruningTest, PruningRespectsCancellationAndDeadlines) {
  RouterConfig config;
  config.num_threads = 1;
  config.pruning = AllPruners();
  DfsStochasticRouter router(graph_, wp_, EstimateOptions(), config);
  const VertexId from = 0;
  const VertexId to = static_cast<VertexId>(graph_.NumVertices() - 1);
  const double budget = MinTime(from, to) * 1.5;

  CancelToken cancelled;
  cancelled.Cancel();
  auto result = router.Route(from, to, 8 * 3600.0, budget, &cancelled);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  CancelToken expired = CancelToken::WithTimeout(1e-9);
  result = router.Route(from, to, 8 * 3600.0, budget, &expired);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Pruner-specific behavior on constructed graphs.

/// Diamond of tests/routing_test.cc: two 2-edge paths s->t, P1 reliable
/// (prob 1 within an hour), P2 risky.
struct DiamondFixture {
  Graph g;
  VertexId s, m1, m2, t;
  EdgeId p1a, p1b, p2a, p2b;
  PathWeightFunction wp;

  DiamondFixture() : wp(BuildModel()) {}

 private:
  PathWeightFunction BuildModel() {
    s = g.AddVertex(0, 0);
    m1 = g.AddVertex(1000, 500);
    m2 = g.AddVertex(1000, -500);
    t = g.AddVertex(2000, 0);
    p1a = g.AddEdge(s, m1, 1200, 13.9).value();
    p1b = g.AddEdge(m1, t, 1200, 13.9).value();
    p2a = g.AddEdge(s, m2, 1200, 13.9).value();
    p2b = g.AddEdge(m2, t, 1200, 13.9).value();

    core::WeightFunctionBuilder builder{TimeBinning(30.0)};
    auto add_unit = [&](EdgeId e, Histogram1D h) {
      InstantiatedVariable v;
      v.path = Path({e});
      v.interval = core::kAllDayInterval;
      v.joint = HistogramND::FromHistogram1D(std::move(h));
      v.support = 0;
      v.from_speed_limit = true;
      builder.Add(std::move(v));
    };
    const Histogram1D reliable =
        Histogram1D::Make({{24 * 60.0, 28 * 60.0, 1.0}}).value();
    add_unit(p1a, reliable);
    add_unit(p1b, reliable);
    const Histogram1D risky =
        Histogram1D::Make({{20 * 60.0, 27.5 * 60.0, 0.9},
                           {32.5 * 60.0, 40 * 60.0, 0.1}})
            .value();
    add_unit(p2a, risky);
    add_unit(p2b, risky);
    return std::move(builder).Freeze();
  }
};

TEST(IncumbentPruningTest, CutsBranchesThatCannotBeatTheIncumbent) {
  DiamondFixture f;
  RouterConfig plain_config;
  plain_config.num_threads = 1;
  DfsStochasticRouter plain(f.g, f.wp, EstimateOptions(), plain_config);
  auto base = plain.Route(f.s, f.t, 8 * 3600.0, 60 * 60.0);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base.value().candidate_paths, 2u);

  RouterConfig config;
  config.num_threads = 1;
  config.pruning.incumbent = true;
  DfsStochasticRouter pruned(f.g, f.wp, EstimateOptions(), config);
  // P1 (prob 1.0 within the hour) is found first; the P2 branch can then
  // never strictly beat the incumbent and must be cut without evaluating
  // its distribution.
  auto result = pruned.Route(f.s, f.t, 8 * 3600.0, 60 * 60.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().best_path, base.value().best_path);
  EXPECT_EQ(result.value().best_probability, base.value().best_probability);
  EXPECT_GE(result.value().incumbent_pruned, 1u);
  EXPECT_LT(result.value().candidate_paths, base.value().candidate_paths);
  EXPECT_LT(result.value().estimator_clones, base.value().estimator_clones);
}

/// Chain s->x->v->t with a strictly worse detour x->a->v: the detour
/// prefix reaches v with a visited superset and a dominated CDF, so the
/// dominance pruner must cut it before it spawns the v->t subtree.
struct DetourFixture {
  Graph g;
  VertexId s, x, a, v, t;
  EdgeId sx, xv, xa, av, vt;
  PathWeightFunction wp;

  DetourFixture() : wp(BuildModel()) {}

 private:
  PathWeightFunction BuildModel() {
    s = g.AddVertex(0, 0);
    x = g.AddVertex(1000, 0);
    a = g.AddVertex(1500, 800);
    v = g.AddVertex(2000, 0);
    t = g.AddVertex(3000, 0);
    sx = g.AddEdge(s, x, 1200, 13.9).value();
    xv = g.AddEdge(x, v, 1200, 13.9).value();  // direct, cheap
    xa = g.AddEdge(x, a, 1200, 13.9).value();  // detour, expensive
    av = g.AddEdge(a, v, 1200, 13.9).value();
    vt = g.AddEdge(v, t, 1200, 13.9).value();

    core::WeightFunctionBuilder builder{TimeBinning(30.0)};
    auto add_unit = [&](EdgeId e, double lo, double hi) {
      InstantiatedVariable var;
      var.path = Path({e});
      var.interval = core::kAllDayInterval;
      var.joint = HistogramND::FromHistogram1D(
          Histogram1D::Make({{lo, hi, 1.0}}).value());
      var.support = 0;
      var.from_speed_limit = true;
      builder.Add(std::move(var));
    };
    add_unit(sx, 100.0, 110.0);
    add_unit(xv, 100.0, 110.0);
    add_unit(xa, 200.0, 220.0);
    add_unit(av, 200.0, 220.0);
    add_unit(vt, 100.0, 110.0);
    return std::move(builder).Freeze();
  }
};

TEST(DominancePruningTest, CutsDominatedDetourPrefix) {
  DetourFixture f;
  RouterConfig plain_config;
  plain_config.num_threads = 1;
  DfsStochasticRouter plain(f.g, f.wp, EstimateOptions(), plain_config);
  auto base = plain.Route(f.s, f.t, 8 * 3600.0, 2000.0);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base.value().candidate_paths, 2u);  // direct + detour

  RouterConfig config;
  config.num_threads = 1;
  config.pruning.dominance = true;
  DfsStochasticRouter pruned(f.g, f.wp, EstimateOptions(), config);
  auto result = pruned.Route(f.s, f.t, 8 * 3600.0, 2000.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().best_path, base.value().best_path);
  EXPECT_EQ(result.value().best_probability, base.value().best_probability);
  EXPECT_GE(result.value().dominance_pruned, 1u);
  EXPECT_LT(result.value().candidate_paths, base.value().candidate_paths);
}

// ---------------------------------------------------------------------------
// serving::Engine surface: knobs, response counters, stats accumulation,
// per-request override.

TEST(EnginePruningTest, CountersFlowThroughResponsesAndStats) {
  Graph graph = roadnet::MakeCity(roadnet::CityAConfig());
  PathWeightFunction model = core::InstantiateWeightFunction(
      graph, traj::TrajectoryStore(), core::HybridParams());
  serving::EngineOptions options;
  options.graph = &graph;
  options.num_threads = 1;
  options.query_cache_bytes = 0;
  auto engine = serving::Engine::Open(std::move(model), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  serving::RouteRequest request;
  request.from = 0;
  request.to = 30;
  request.departure_time = 8 * 3600.0;
  request.budget_seconds =
      roadnet::ShortestPathCost(graph, 0, 30, roadnet::FreeFlowWeight(graph)) *
      1.3;

  // Engine-level pruning is off: a plain route, with attribution counters
  // still populated (bound pruning and clone counting are always active).
  auto plain = engine.value()->Route(request);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_GE(plain.value().estimator_clones, 1u);
  EXPECT_EQ(plain.value().incumbent_pruned, 0u);
  EXPECT_EQ(plain.value().dominance_pruned, 0u);

  // Per-request override turns every pruner on: same answer, fewer clones.
  serving::RouteRequest pruned_request = request;
  pruned_request.use_pruning_override = true;
  pruned_request.pruning = AllPruners();
  auto pruned = engine.value()->Route(pruned_request);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(pruned.value().on_time_probability,
            plain.value().on_time_probability);
  EXPECT_LE(pruned.value().estimator_clones, plain.value().estimator_clones);

  const serving::EngineStats stats = engine.value()->stats();
  EXPECT_EQ(stats.route_bound_pruned,
            plain.value().bound_pruned + pruned.value().bound_pruned);
  EXPECT_EQ(stats.route_incumbent_pruned,
            plain.value().incumbent_pruned + pruned.value().incumbent_pruned);
  EXPECT_EQ(stats.route_dominance_pruned,
            plain.value().dominance_pruned + pruned.value().dominance_pruned);
  EXPECT_EQ(stats.route_estimator_clones,
            plain.value().estimator_clones + pruned.value().estimator_clones);
}

TEST(EnginePruningTest, EngineLevelPruningMatchesPlainEngine) {
  Graph graph = roadnet::MakeCity(roadnet::CityAConfig());
  auto build_model = [&] {
    return core::InstantiateWeightFunction(graph, traj::TrajectoryStore(),
                                           core::HybridParams());
  };

  serving::EngineOptions plain_options;
  plain_options.graph = &graph;
  plain_options.num_threads = 1;
  plain_options.query_cache_bytes = 0;
  auto plain_engine = serving::Engine::Open(build_model(), plain_options);
  ASSERT_TRUE(plain_engine.ok());

  serving::EngineOptions pruned_options = plain_options;
  pruned_options.route_pruning = AllPruners();
  auto pruned_engine = serving::Engine::Open(build_model(), pruned_options);
  ASSERT_TRUE(pruned_engine.ok());

  serving::RouteRequest request;
  request.from = 5;
  request.to = 40;
  request.departure_time = 8 * 3600.0;
  request.budget_seconds =
      roadnet::ShortestPathCost(graph, 5, 40, roadnet::FreeFlowWeight(graph)) *
      1.25;
  auto base = plain_engine.value()->Route(request);
  auto pruned = pruned_engine.value()->Route(request);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(pruned.value().on_time_probability,
            base.value().on_time_probability);
  EXPECT_EQ(pruned.value().best_path, base.value().best_path);

  // Pruning composes with the deadline machinery of the engine: a
  // microscopically small timeout unwinds with kDeadlineExceeded.
  serving::RouteRequest hurried = request;
  hurried.timeout_seconds = 1e-9;
  auto result = pruned_engine.value()->Route(hurried);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace routing
}  // namespace pcde
