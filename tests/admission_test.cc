// Deterministic unit tests for the serving admission gate
// (src/serving/admission.h): count-only default, immediate shed at
// capacity, bounded queueing with timeout, waiter handoff on release, and
// RAII slot accounting.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "serving/admission.h"

namespace pcde {
namespace serving {
namespace {

TEST(AdmissionTest, CountOnlyModeNeverSheds) {
  AdmissionController::Options options;  // max_inflight = 0: count only
  AdmissionController admission(options);
  std::vector<AdmissionController::Slot> slots(16);
  for (size_t i = 0; i < slots.size(); ++i) {
    uint64_t inflight = 0;
    ASSERT_TRUE(admission.Acquire(&slots[i], &inflight).ok()) << i;
    EXPECT_EQ(inflight, i + 1);
  }
  const auto stats = admission.stats();
  EXPECT_EQ(stats.admitted, 16u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.inflight, 16u);
  EXPECT_EQ(stats.inflight_highwater, 16u);
  slots.clear();  // RAII release
  EXPECT_EQ(admission.stats().inflight, 0u);
  EXPECT_EQ(admission.stats().inflight_highwater, 16u);  // highwater sticks
}

TEST(AdmissionTest, AtCapacityShedsImmediatelyWithoutQueue) {
  AdmissionController::Options options;
  options.max_inflight = 2;  // queue_timeout_seconds = 0: no queueing
  AdmissionController admission(options);
  AdmissionController::Slot a, b, c;
  ASSERT_TRUE(admission.Acquire(&a).ok());
  ASSERT_TRUE(admission.Acquire(&b).ok());
  const Status shed = admission.Acquire(&c);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(c.held());
  EXPECT_EQ(admission.stats().shed, 1u);

  // Releasing a slot reopens admission.
  a.Release();
  EXPECT_TRUE(admission.Acquire(&c).ok());
  EXPECT_TRUE(c.held());
  EXPECT_EQ(admission.stats().admitted, 3u);
  EXPECT_EQ(admission.stats().inflight, 2u);
}

TEST(AdmissionTest, ZeroQueueDepthShedsEvenWithTimeout) {
  AdmissionController::Options options;
  options.max_inflight = 1;
  options.max_queue_depth = 0;  // no waiters allowed
  options.queue_timeout_seconds = 5.0;
  AdmissionController admission(options);
  AdmissionController::Slot held, denied;
  ASSERT_TRUE(admission.Acquire(&held).ok());
  Stopwatch watch;
  EXPECT_EQ(admission.Acquire(&denied).code(),
            StatusCode::kResourceExhausted);
  // Immediate: the zero-depth queue must not park for the timeout.
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(AdmissionTest, QueuedRequestTimesOutAndSheds) {
  AdmissionController::Options options;
  options.max_inflight = 1;
  options.max_queue_depth = 1;
  options.queue_timeout_seconds = 0.05;
  AdmissionController admission(options);
  AdmissionController::Slot held, queued;
  ASSERT_TRUE(admission.Acquire(&held).ok());
  Stopwatch watch;
  const Status shed = admission.Acquire(&queued);
  const double waited = watch.ElapsedSeconds();
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(waited, 0.05);  // it did queue for the timeout...
  EXPECT_LT(waited, 5.0);   // ...and came back (bounded tail latency)
  EXPECT_EQ(admission.stats().shed, 1u);
}

TEST(AdmissionTest, QueuedRequestGetsTheFreedSlot) {
  AdmissionController::Options options;
  options.max_inflight = 1;
  options.max_queue_depth = 1;
  options.queue_timeout_seconds = 30.0;  // far beyond the test's runtime
  AdmissionController admission(options);
  auto held = std::make_unique<AdmissionController::Slot>();
  ASSERT_TRUE(admission.Acquire(held.get()).ok());

  Status queued_result = Status::Internal("not run");
  std::thread waiter([&] {
    AdmissionController::Slot queued;
    queued_result = admission.Acquire(&queued);
  });
  // Give the waiter time to park, then free the slot; the waiter must be
  // admitted (not shed) well before its 30 s timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  held.reset();
  waiter.join();
  EXPECT_TRUE(queued_result.ok()) << queued_result.ToString();
  const auto stats = admission.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(AdmissionTest, MovedSlotReleasesExactlyOnce) {
  AdmissionController::Options options;
  options.max_inflight = 1;
  AdmissionController admission(options);
  {
    AdmissionController::Slot outer;
    {
      AdmissionController::Slot inner;
      ASSERT_TRUE(admission.Acquire(&inner).ok());
      outer = std::move(inner);
      EXPECT_FALSE(inner.held());
      EXPECT_TRUE(outer.held());
      EXPECT_EQ(admission.stats().inflight, 1u);
    }  // moved-from inner destructs: must not double-release
    EXPECT_EQ(admission.stats().inflight, 1u);
  }
  EXPECT_EQ(admission.stats().inflight, 0u);
  EXPECT_EQ(admission.stats().admitted, 1u);
}

}  // namespace
}  // namespace serving
}  // namespace pcde
