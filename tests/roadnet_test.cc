// Unit tests for src/roadnet: graph construction, the paper's path algebra
// (Sec. 2.1 examples), generators, spatial index, and shortest paths.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "roadnet/generators.h"
#include "roadnet/graph.h"
#include "roadnet/path.h"
#include "roadnet/shortest_path.h"
#include "roadnet/spatial_index.h"

namespace pcde {
namespace roadnet {
namespace {

/// The Fig. 2(a) road network: a small graph with labelled edges e1..e6.
/// Layout (coordinates only matter for geometry tests):
///   VA -e1-> VB -e2-> VC -e3-> VD -e4-> VE -e5-> VF, and VB -e6-> VE... we
/// only need the adjacency structure: e1..e4 chain, e4-e5 adjacent, e6-e5
/// adjacent.
struct PaperGraph {
  Graph g;
  VertexId va, vb, vc, vd, ve, vf, vg;
  EdgeId e1, e2, e3, e4, e5, e6;

  PaperGraph() {
    va = g.AddVertex(0, 0);
    vb = g.AddVertex(100, 0);
    vc = g.AddVertex(200, 0);
    vd = g.AddVertex(300, 0);
    ve = g.AddVertex(400, 0);
    vf = g.AddVertex(500, 0);
    vg = g.AddVertex(400, 100);  // start of e6
    e1 = g.AddEdge(va, vb, 100, 13.9).value();
    e2 = g.AddEdge(vb, vc, 100, 13.9).value();
    e3 = g.AddEdge(vc, vd, 100, 13.9).value();
    e4 = g.AddEdge(vd, ve, 100, 13.9).value();
    e5 = g.AddEdge(ve, vf, 100, 13.9).value();
    e6 = g.AddEdge(vg, ve, 100, 13.9).value();
  }
};

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

TEST(GraphTest, AddVertexAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddVertex(0, 0), 0u);
  EXPECT_EQ(g.AddVertex(1, 1), 1u);
  EXPECT_EQ(g.NumVertices(), 2u);
}

TEST(GraphTest, AddEdgeValidation) {
  Graph g;
  const VertexId a = g.AddVertex(0, 0);
  const VertexId b = g.AddVertex(100, 0);
  EXPECT_FALSE(g.AddEdge(a, 99, 100, 13.9).ok());   // unknown endpoint
  EXPECT_FALSE(g.AddEdge(a, a, 100, 13.9).ok());    // self loop
  EXPECT_FALSE(g.AddEdge(a, b, -5, 13.9).ok());     // bad length
  EXPECT_FALSE(g.AddEdge(a, b, 100, 0.0).ok());     // bad speed
  EXPECT_TRUE(g.AddEdge(a, b, 100, 13.9).ok());
}

TEST(GraphTest, IncidenceLists) {
  PaperGraph p;
  EXPECT_EQ(p.g.OutEdges(p.vb).size(), 1u);
  EXPECT_EQ(p.g.OutEdges(p.vb)[0], p.e2);
  EXPECT_EQ(p.g.InEdges(p.ve).size(), 2u);  // e4 and e6
  EXPECT_TRUE(p.g.AreAdjacent(p.e1, p.e2));
  EXPECT_TRUE(p.g.AreAdjacent(p.e4, p.e5));
  EXPECT_TRUE(p.g.AreAdjacent(p.e6, p.e5));
  EXPECT_FALSE(p.g.AreAdjacent(p.e1, p.e3));
}

TEST(GraphTest, FindEdge) {
  PaperGraph p;
  EXPECT_EQ(p.g.FindEdge(p.va, p.vb), p.e1);
  EXPECT_EQ(p.g.FindEdge(p.vb, p.va), kInvalidEdge);
}

TEST(GraphTest, FreeFlowSeconds) {
  PaperGraph p;
  EXPECT_NEAR(p.g.edge(p.e1).FreeFlowSeconds(), 100.0 / 13.9, 1e-9);
}

TEST(GraphTest, EdgeGeometry) {
  PaperGraph p;
  double x = 0, y = 0;
  p.g.PointAlongEdge(p.e1, 0.5, &x, &y);
  EXPECT_DOUBLE_EQ(x, 50.0);
  EXPECT_DOUBLE_EQ(y, 0.0);
  double frac = -1;
  const double d = p.g.DistanceToEdge(p.e1, 30.0, 40.0, &frac);
  EXPECT_DOUBLE_EQ(d, 40.0);
  EXPECT_DOUBLE_EQ(frac, 0.3);
  // Beyond the segment end, distance is to the endpoint.
  EXPECT_DOUBLE_EQ(p.g.DistanceToEdge(p.e1, 120.0, 0.0), 20.0);
}

// ---------------------------------------------------------------------------
// Path algebra (the paper's Sec. 2.1 examples)
// ---------------------------------------------------------------------------

TEST(PathTest, MakeValidatesAdjacency) {
  PaperGraph p;
  EXPECT_TRUE(Path::Make(p.g, {p.e1, p.e2, p.e3}).ok());
  EXPECT_FALSE(Path::Make(p.g, {p.e1, p.e3}).ok());  // not adjacent
  EXPECT_FALSE(Path::Make(p.g, {}).ok());            // empty
}

TEST(PathTest, MakeRejectsVertexRevisit) {
  Graph g;
  const VertexId a = g.AddVertex(0, 0);
  const VertexId b = g.AddVertex(1, 0);
  const VertexId c = g.AddVertex(1, 1);
  const EdgeId ab = g.AddEdge(a, b, 1, 10).value();
  const EdgeId bc = g.AddEdge(b, c, 1, 10).value();
  const EdgeId ca = g.AddEdge(c, a, 1, 10).value();
  const EdgeId abx = g.AddEdge(a, b, 1, 10).value();  // parallel edge
  EXPECT_FALSE(Path::Make(g, {ab, bc, ca, abx}).ok());  // revisits a and b
}

TEST(PathTest, IntersectPaperExample) {
  // <e1,e2,e3> ∩ <e2,e3,e4> = <e2,e3>
  PaperGraph p;
  const Path a({p.e1, p.e2, p.e3});
  const Path b({p.e2, p.e3, p.e4});
  EXPECT_EQ(a.Intersect(b), Path({p.e2, p.e3}));
  EXPECT_EQ(b.Intersect(a), Path({p.e2, p.e3}));
}

TEST(PathTest, SubtractPaperExample) {
  // <e1,e2,e3> \ <e2,e3,e4> = <e1>
  PaperGraph p;
  const Path a({p.e1, p.e2, p.e3});
  const Path b({p.e2, p.e3, p.e4});
  auto diff = a.Subtract(b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value(), Path({p.e1}));
}

TEST(PathTest, SubtractNonContiguousFails) {
  PaperGraph p;
  const Path a({p.e1, p.e2, p.e3, p.e4});
  const Path mid({p.e2, p.e3});
  EXPECT_FALSE(a.Subtract(mid).ok());  // remainder e1 | e4 is not a path
}

TEST(PathTest, SubPathRelation) {
  PaperGraph p;
  const Path whole({p.e1, p.e2, p.e3, p.e4});
  EXPECT_TRUE(whole.ContainsSubPath(Path({p.e2, p.e3})));
  EXPECT_TRUE(whole.ContainsSubPath(whole));
  EXPECT_FALSE(whole.ContainsSubPath(Path({p.e2, p.e4})));  // not contiguous
  EXPECT_EQ(whole.FindSubPath(Path({p.e3, p.e4})), 2u);
  EXPECT_EQ(whole.FindSubPath(Path({p.e5})), Path::npos);
}

TEST(PathTest, SliceIsSubPath) {
  PaperGraph p;
  const Path whole({p.e1, p.e2, p.e3, p.e4});
  EXPECT_EQ(whole.Slice(1, 2), Path({p.e2, p.e3}));
  EXPECT_EQ(whole.Slice(3, 10), Path({p.e4}));  // clamped
  EXPECT_TRUE(whole.Slice(9, 1).empty());
}

TEST(PathTest, ConcatAndAppend) {
  PaperGraph p;
  const Path a({p.e1, p.e2});
  const Path b({p.e3, p.e4});
  auto joined = a.Concat(p.g, b);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().size(), 4u);
  auto extended = joined.value().Append(p.g, p.e5);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended.value().back(), p.e5);
  // Appending a non-adjacent edge fails.
  EXPECT_FALSE(a.Append(p.g, p.e5).ok());
}

TEST(PathTest, VerticesAndLengths) {
  PaperGraph p;
  const Path path({p.e1, p.e2, p.e3});
  const auto vs = path.Vertices(p.g);
  ASSERT_EQ(vs.size(), 4u);
  EXPECT_EQ(vs.front(), p.va);
  EXPECT_EQ(vs.back(), p.vd);
  EXPECT_DOUBLE_EQ(path.LengthMeters(p.g), 300.0);
  EXPECT_NEAR(path.FreeFlowSeconds(p.g), 300.0 / 13.9, 1e-9);
}

TEST(PathTest, HashConsistency) {
  PaperGraph p;
  PathHash h;
  EXPECT_EQ(h(Path({p.e1, p.e2})), h(Path({p.e1, p.e2})));
  EXPECT_NE(h(Path({p.e1, p.e2})), h(Path({p.e2, p.e1})));
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(GeneratorsTest, CityAShape) {
  const Graph g = MakeCity(CityAConfig());
  EXPECT_EQ(g.NumVertices(), 26u * 26u);
  EXPECT_GT(g.NumEdges(), 1500u);
  // Bidirectional edges come in pairs.
  EXPECT_EQ(g.NumEdges() % 2, 0u);
}

TEST(GeneratorsTest, CityBIsFasterAndCoarser) {
  const Graph a = MakeCity(CityAConfig());
  const Graph b = MakeCity(CityBConfig());
  EXPECT_LT(b.NumVertices(), a.NumVertices());
  double mean_speed_a = 0, mean_speed_b = 0;
  for (const Edge& e : a.edges()) mean_speed_a += e.speed_limit_mps;
  for (const Edge& e : b.edges()) mean_speed_b += e.speed_limit_mps;
  mean_speed_a /= static_cast<double>(a.NumEdges());
  mean_speed_b /= static_cast<double>(b.NumEdges());
  EXPECT_GT(mean_speed_b, mean_speed_a);
}

TEST(GeneratorsTest, DeterministicUnderSeed) {
  const Graph g1 = MakeCity(CityAConfig());
  const Graph g2 = MakeCity(CityAConfig());
  ASSERT_EQ(g1.NumEdges(), g2.NumEdges());
  for (size_t i = 0; i < g1.NumEdges(); ++i) {
    EXPECT_EQ(g1.edge(i).from, g2.edge(i).from);
    EXPECT_EQ(g1.edge(i).to, g2.edge(i).to);
  }
}

TEST(GeneratorsTest, ContainsAllRoadClasses) {
  const Graph g = MakeCity(CityAConfig());
  std::set<RoadClass> classes;
  for (const Edge& e : g.edges()) classes.insert(e.road_class);
  EXPECT_EQ(classes.size(), 3u);
}

TEST(GeneratorsTest, LargeNetworkIsStronglyConnectedEnough) {
  // Every vertex should reach a central hub via the arterial skeleton.
  const Graph g = MakeCity(CityAConfig());
  const auto dist = ShortestPathTree(g, 0, FreeFlowWeight(g));
  size_t reachable = 0;
  for (double d : dist) reachable += d != kInfCost ? 1 : 0;
  EXPECT_GT(static_cast<double>(reachable) / g.NumVertices(), 0.99);
}

// Property sweep: random simple paths of every requested cardinality are
// valid simple paths of exactly that cardinality.
class RandomPathProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(RandomPathProperty, ProducesValidSimplePath) {
  const Graph g = MakeCity(CityAConfig());
  Rng rng(GetParam() * 7919 + 1);
  auto path = RandomSimplePath(g, GetParam(), &rng);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path.value().size(), GetParam());
  EXPECT_TRUE(ValidatePath(g, path.value().edges()).ok());
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, RandomPathProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 40, 60, 80,
                                           100));

// ---------------------------------------------------------------------------
// Spatial index
// ---------------------------------------------------------------------------

TEST(SpatialIndexTest, FindsNearestEdge) {
  PaperGraph p;
  SpatialIndex index(p.g, 100.0);
  const auto c = index.NearestEdge(50.0, 5.0, 50.0);
  EXPECT_EQ(c.edge, p.e1);
  EXPECT_DOUBLE_EQ(c.distance_m, 5.0);
  EXPECT_DOUBLE_EQ(c.fraction, 0.5);
}

TEST(SpatialIndexTest, RadiusFiltering) {
  PaperGraph p;
  SpatialIndex index(p.g, 100.0);
  EXPECT_TRUE(index.EdgesNear(50.0, 500.0, 10.0).empty());
  EXPECT_FALSE(index.EdgesNear(50.0, 5.0, 10.0).empty());
}

class SpatialIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpatialIndexProperty, MatchesBruteForce) {
  const Graph g = MakeCity(CityAConfig());
  SpatialIndex index(g, 80.0);
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const double x = rng.Uniform(0.0, 25.0 * 150.0);
    const double y = rng.Uniform(0.0, 25.0 * 150.0);
    const double radius = rng.Uniform(20.0, 120.0);
    std::unordered_set<EdgeId> brute;
    for (const Edge& e : g.edges()) {
      if (g.DistanceToEdge(e.id, x, y) <= radius) brute.insert(e.id);
    }
    const auto found = index.EdgesNear(x, y, radius);
    EXPECT_EQ(found.size(), brute.size());
    for (const auto& c : found) EXPECT_TRUE(brute.count(c.edge));
    // Sorted ascending by distance.
    for (size_t i = 1; i < found.size(); ++i) {
      EXPECT_LE(found[i - 1].distance_m, found[i].distance_m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Shortest paths
// ---------------------------------------------------------------------------

TEST(ShortestPathTest, ChainGraphExact) {
  PaperGraph p;
  auto sp = ShortestPath(p.g, p.va, p.vf, FreeFlowWeight(p.g));
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp.value(), Path({p.e1, p.e2, p.e3, p.e4, p.e5}));
  EXPECT_NEAR(ShortestPathCost(p.g, p.va, p.vf, FreeFlowWeight(p.g)),
              500.0 / 13.9, 1e-9);
}

TEST(ShortestPathTest, UnreachableReturnsNotFound) {
  PaperGraph p;
  // vg has no incoming edges.
  EXPECT_FALSE(ShortestPath(p.g, p.va, p.vg, FreeFlowWeight(p.g)).ok());
  EXPECT_EQ(ShortestPathCost(p.g, p.va, p.vg, FreeFlowWeight(p.g)), kInfCost);
}

TEST(ShortestPathTest, TreeAndPairwiseAgree) {
  const Graph g = MakeCity(CityAConfig());
  const auto weight = FreeFlowWeight(g);
  const auto tree = ShortestPathTree(g, 17, weight);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const VertexId v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    EXPECT_NEAR(tree[v], ShortestPathCost(g, 17, v, weight), 1e-9);
  }
}

TEST(ShortestPathTest, ReverseTreeMatchesForward) {
  const Graph g = MakeCity(CityAConfig());
  const auto weight = FreeFlowWeight(g);
  const VertexId dest = 42;
  const auto rtree = ReverseShortestPathTree(g, dest, weight);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const VertexId v = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    EXPECT_NEAR(rtree[v], ShortestPathCost(g, v, dest, weight), 1e-9);
  }
}

TEST(ShortestPathTest, PathCostMatchesReportedCost) {
  const Graph g = MakeCity(CityAConfig());
  const auto weight = FreeFlowWeight(g);
  auto sp = ShortestPath(g, 0, static_cast<VertexId>(g.NumVertices() - 1),
                         weight);
  ASSERT_TRUE(sp.ok());
  double total = 0;
  for (EdgeId e : sp.value()) total += weight(g.edge(e));
  EXPECT_NEAR(total,
              ShortestPathCost(g, 0,
                               static_cast<VertexId>(g.NumVertices() - 1),
                               weight),
              1e-9);
}

}  // namespace
}  // namespace roadnet
}  // namespace pcde
