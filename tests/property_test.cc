// Randomized property suites: Monte-Carlo cross-checks of the histogram
// machinery and the chain estimator on generated models. These guard the
// algebra (mass conservation, additivity, exactness on decomposable
// models) across a seed sweep rather than on hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/chain_estimator.h"
#include "hist/histogram1d.h"
#include "hist/histogram_nd.h"

namespace pcde {
namespace {

using core::Decomposition;
using core::DecompositionPart;
using core::InstantiatedVariable;
using hist::Bucket;
using hist::Histogram1D;
using hist::HistogramND;

/// Random disjoint-bucket histogram with up to `max_buckets` buckets.
Histogram1D RandomHistogram(Rng* rng, int max_buckets = 6) {
  const int n = 1 + static_cast<int>(rng->UniformInt(0, max_buckets - 1));
  std::vector<Bucket> buckets;
  double lo = rng->Uniform(0, 50);
  std::vector<double> masses;
  double total = 0;
  for (int i = 0; i < n; ++i) {
    const double w = rng->Uniform(1, 20);
    buckets.emplace_back(lo, lo + w, 0.0);
    lo += w + rng->Uniform(0, 10);  // possible gap
    masses.push_back(rng->Uniform(0.05, 1.0));
    total += masses.back();
  }
  for (int i = 0; i < n; ++i) buckets[i].prob = masses[i] / total;
  auto h = Histogram1D::Make(std::move(buckets));
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

// ---------------------------------------------------------------------------
// Convolution vs Monte Carlo
// ---------------------------------------------------------------------------

TEST_P(SeedSweep, ConvolutionMatchesMonteCarlo) {
  Rng rng(GetParam());
  const Histogram1D a = RandomHistogram(&rng);
  const Histogram1D b = RandomHistogram(&rng);
  auto conv = hist::Convolve(a, b, 128);
  ASSERT_TRUE(conv.ok());
  // Sample sums and compare the CDF at several probes.
  const int n = 20000;
  std::vector<double> sums(n);
  for (int i = 0; i < n; ++i) sums[i] = a.Sample(&rng) + b.Sample(&rng);
  std::sort(sums.begin(), sums.end());
  // Bucket-level convolution flattens each pairwise Minkowski sum
  // uniformly; against the true (triangular-within-box) sums the CDF can
  // deviate by up to ~12.5% of a box's mass — the method's documented
  // approximation, not an implementation error.
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double x = sums[static_cast<size_t>(q * (n - 1))];
    EXPECT_NEAR(conv.value().Cdf(x), q, 0.14)
        << "quantile " << q << " seed " << GetParam();
  }
  EXPECT_NEAR(conv.value().Mean(), a.Mean() + b.Mean(), 1e-6);
}

// ---------------------------------------------------------------------------
// SumDistribution vs Monte Carlo on random joints
// ---------------------------------------------------------------------------

HistogramND RandomJoint(Rng* rng, size_t dims) {
  std::vector<std::vector<double>> bounds(dims);
  std::vector<size_t> counts(dims);
  for (size_t d = 0; d < dims; ++d) {
    const size_t nb = 1 + static_cast<size_t>(rng->UniformInt(0, 2));
    counts[d] = nb;
    double lo = rng->Uniform(0, 30);
    bounds[d].push_back(lo);
    for (size_t i = 0; i < nb; ++i) {
      lo += rng->Uniform(2, 25);
      bounds[d].push_back(lo);
    }
  }
  // Random positive mass on a random subset of cells (always include one).
  std::vector<HistogramND::HyperBucket> hbs;
  double total = 0;
  std::vector<uint32_t> idx(dims, 0);
  // Enumerate all cells; keep each with probability 0.7.
  size_t cells = 1;
  for (size_t d = 0; d < dims; ++d) cells *= counts[d];
  for (size_t c = 0; c < cells; ++c) {
    size_t rest = c;
    for (size_t d = 0; d < dims; ++d) {
      idx[d] = static_cast<uint32_t>(rest % counts[d]);
      rest /= counts[d];
    }
    if (!hbs.empty() && !rng->Bernoulli(0.7)) continue;
    const double mass = rng->Uniform(0.05, 1.0);
    hbs.push_back({idx, mass});
    total += mass;
  }
  for (auto& hb : hbs) hb.prob /= total;
  auto h = HistogramND::Make(std::move(bounds), std::move(hbs));
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

double SampleJointSum(const HistogramND& joint, Rng* rng) {
  double u = rng->Uniform();
  const auto& hbs = joint.buckets();
  size_t pick = hbs.size() - 1;
  for (size_t i = 0; i < hbs.size(); ++i) {
    if (u < hbs[i].prob) {
      pick = i;
      break;
    }
    u -= hbs[i].prob;
  }
  double sum = 0;
  for (size_t d = 0; d < joint.NumDims(); ++d) {
    const Interval box = joint.Box(hbs[pick], d);
    sum += rng->Uniform(box.lo, box.hi);
  }
  return sum;
}

TEST_P(SeedSweep, SumDistributionMatchesMonteCarlo) {
  Rng rng(GetParam() * 31 + 7);
  const size_t dims = 2 + static_cast<size_t>(rng.UniformInt(0, 1));
  const HistogramND joint = RandomJoint(&rng, dims);
  auto sum = joint.SumDistribution(128);
  ASSERT_TRUE(sum.ok());
  const int n = 20000;
  std::vector<double> sums(n);
  double mc_mean = 0.0;
  for (int i = 0; i < n; ++i) {
    sums[i] = SampleJointSum(joint, &rng);
    mc_mean += sums[i];
  }
  mc_mean /= n;
  std::sort(sums.begin(), sums.end());
  // The mean of the Sec. 4.2 reduction is exact (bucket midpoints).
  EXPECT_NEAR(sum.value().Mean(), mc_mean, 0.6) << "seed " << GetParam();
  // The CDF carries the uniform-within-bucket approximation: the true
  // within-box sum is Irwin-Hall-shaped, so mid-bucket deviations up to
  // ~20% of a bucket's mass (3 dims) are inherent to the paper's
  // reduction.
  for (double q : {0.2, 0.5, 0.8}) {
    const double x = sums[static_cast<size_t>(q * (n - 1))];
    EXPECT_NEAR(sum.value().Cdf(x), q, 0.2) << "seed " << GetParam();
  }
  // Support bounds are exact.
  EXPECT_GE(sums.front(), sum.value().Min() - 1e-9);
  EXPECT_LE(sums.back(), sum.value().Max() + 1e-9);
}

// ---------------------------------------------------------------------------
// Chain estimator exactness on random decomposable models
// ---------------------------------------------------------------------------

TEST_P(SeedSweep, ChainExactOnRandomDecomposableModel) {
  Rng rng(GetParam() * 97 + 13);
  // Random p(a,b) and p(c|b) over 2-3 buckets per dim with shared
  // b-boundaries; the truth p(a,b,c) = p(a,b) p(c|b) is decomposable with
  // separator b, so the chain estimate from the pair marginals is exact.
  const size_t na = 2, nb = 2, nc = 3;
  auto make_bounds = [&](size_t n, double start) {
    std::vector<double> bounds{start};
    for (size_t i = 0; i < n; ++i) bounds.push_back(bounds.back() + rng.Uniform(3, 20));
    return bounds;
  };
  const auto ba = make_bounds(na, rng.Uniform(0, 10));
  const auto bb = make_bounds(nb, rng.Uniform(0, 10));
  const auto bc = make_bounds(nc, rng.Uniform(0, 10));

  // Random p(a,b).
  std::vector<double> pab(na * nb);
  double total = 0;
  for (double& p : pab) {
    p = rng.Uniform(0.05, 1.0);
    total += p;
  }
  for (double& p : pab) p /= total;
  // Random p(c|b) rows.
  std::vector<double> pcb(nb * nc);
  for (size_t b = 0; b < nb; ++b) {
    double row = 0;
    for (size_t c = 0; c < nc; ++c) {
      pcb[b * nc + c] = rng.Uniform(0.05, 1.0);
      row += pcb[b * nc + c];
    }
    for (size_t c = 0; c < nc; ++c) pcb[b * nc + c] /= row;
  }

  std::vector<HistogramND::HyperBucket> truth3, h12, h23;
  std::vector<double> pb(nb, 0.0);
  for (size_t a = 0; a < na; ++a) {
    for (size_t b = 0; b < nb; ++b) {
      pb[b] += pab[a * nb + b];
      h12.push_back({{static_cast<uint32_t>(a), static_cast<uint32_t>(b)},
                     pab[a * nb + b]});
      for (size_t c = 0; c < nc; ++c) {
        truth3.push_back({{static_cast<uint32_t>(a), static_cast<uint32_t>(b),
                           static_cast<uint32_t>(c)},
                          pab[a * nb + b] * pcb[b * nc + c]});
      }
    }
  }
  for (size_t b = 0; b < nb; ++b) {
    for (size_t c = 0; c < nc; ++c) {
      h23.push_back({{static_cast<uint32_t>(b), static_cast<uint32_t>(c)},
                     pb[b] * pcb[b * nc + c]});
    }
  }

  InstantiatedVariable v12, v23;
  v12.path = roadnet::Path({1, 2});
  v12.joint = HistogramND::Make({ba, bb}, h12).value();
  v23.path = roadnet::Path({2, 3});
  v23.joint = HistogramND::Make({bb, bc}, h23).value();
  const HistogramND truth = HistogramND::Make({ba, bb, bc}, truth3).value();

  const Decomposition de = {DecompositionPart{&v12, 0},
                            DecompositionPart{&v23, 1}};
  core::ChainOptions options;
  options.max_result_buckets = 256;
  auto est = core::EstimateFromDecomposition(de, options);
  ASSERT_TRUE(est.ok());
  auto expected = truth.SumDistribution(256);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(hist::L1Distance(est.value(), expected.value()), 1e-9)
      << "seed " << GetParam();
}

// ---------------------------------------------------------------------------
// Compact: mass and mean conservation under aggressive merging
// ---------------------------------------------------------------------------

TEST_P(SeedSweep, CompactConservesMassAndMean) {
  Rng rng(GetParam() * 7 + 3);
  const Histogram1D h = RandomHistogram(&rng, 6);
  for (size_t cap : {1, 2, 3}) {
    const Histogram1D c = hist::Compact(h, cap);
    EXPECT_LE(c.NumBuckets(), cap);
    double total = 0;
    for (const auto& b : c.buckets()) total += b.prob;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Merging across gaps moves mass within the merged span; the mean may
    // shift but must stay inside the support hull.
    EXPECT_GE(c.Mean(), h.Min() - 1e-9);
    EXPECT_LE(c.Mean(), h.Max() + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// KL: non-negative and zero only at equality (up to smoothing)
// ---------------------------------------------------------------------------

TEST_P(SeedSweep, KlNonNegativeOnRandomPairs) {
  Rng rng(GetParam() * 11 + 5);
  const Histogram1D p = RandomHistogram(&rng);
  const Histogram1D q = RandomHistogram(&rng);
  EXPECT_GE(hist::KlDivergence(p, q), 0.0);
  // Self-divergence is bounded by the epsilon smoothing (1e-6 of mass
  // redistributed), not exactly zero.
  EXPECT_NEAR(hist::KlDivergence(p, p), 0.0, 2e-5);
  EXPECT_NEAR(hist::KlDivergence(q, q), 0.0, 2e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace pcde
