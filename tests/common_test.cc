// Unit tests for src/common: Status/StatusOr, Interval arithmetic (the
// shift-and-enlarge and bucket-sum primitives), deterministic RNG, and the
// numeric helpers behind the parametric MLE fits.
#include <gtest/gtest.h>

#include <cmath>

#include "common/interval.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace pcde {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad path");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad path");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad path");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

TEST(IntervalTest, BasicAccessors) {
  Interval iv(2.0, 5.0);
  EXPECT_DOUBLE_EQ(iv.width(), 3.0);
  EXPECT_DOUBLE_EQ(iv.mid(), 3.5);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.Contains(2.0));
  EXPECT_TRUE(iv.Contains(4.999));
  EXPECT_FALSE(iv.Contains(5.0));  // half-open
  EXPECT_FALSE(iv.Contains(1.999));
}

TEST(IntervalTest, EmptyWhenDegenerate) {
  EXPECT_TRUE(Interval(3.0, 3.0).empty());
  EXPECT_TRUE(Interval(4.0, 3.0).empty());
  EXPECT_TRUE(Interval().empty());
}

TEST(IntervalTest, Intersection) {
  Interval a(0.0, 10.0);
  Interval b(5.0, 15.0);
  EXPECT_EQ(a.Intersect(b), Interval(5.0, 10.0));
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(a.Intersect(Interval(20.0, 30.0)).empty());
  EXPECT_FALSE(a.Overlaps(Interval(10.0, 20.0)));  // touching, half-open
}

TEST(IntervalTest, MinkowskiSumMatchesPaperBucketSums) {
  // Fig. 7: hyper-bucket <[20,30),[20,40)> becomes bucket [40,70).
  EXPECT_EQ(Interval(20.0, 30.0) + Interval(20.0, 40.0), Interval(40.0, 70.0));
}

TEST(IntervalTest, ShiftAndEnlargeSemantics) {
  // SAE([ts,te], V) = [ts + V.min, te + V.max] (Sec. 4.1.3): for a point
  // departure t and an edge with travel time in [30, 60), the next window
  // is [t+30, t+60).
  const Interval departure(480.0, 480.0);
  const Interval sae(departure.lo + 30.0, departure.hi + 60.0);
  EXPECT_EQ(sae, Interval(510.0, 540.0));
  EXPECT_DOUBLE_EQ(sae.width(), 30.0);
}

TEST(IntervalTest, OverlapRatio) {
  Interval window(0.0, 100.0);
  EXPECT_DOUBLE_EQ(window.OverlapRatioOf(Interval(50.0, 150.0)), 0.5);
  EXPECT_DOUBLE_EQ(window.OverlapRatioOf(Interval(-100.0, 200.0)), 1.0);
  EXPECT_DOUBLE_EQ(window.OverlapRatioOf(Interval(200.0, 300.0)), 0.0);
  EXPECT_DOUBLE_EQ(Interval(5.0, 5.0).OverlapRatioOf(window), 0.0);  // empty
}

TEST(IntervalTest, IntervalSelectionPrefersLargestOverlap) {
  // The paper picks argmax_j |I_j ∩ UI_k| / |UI_k|.
  Interval ui(110.0, 130.0);
  Interval i1(100.0, 120.0);  // overlap 10
  Interval i2(120.0, 140.0);  // overlap 10
  Interval i3(105.0, 128.0);  // overlap 18
  EXPECT_GT(ui.OverlapRatioOf(i3), ui.OverlapRatioOf(i1));
  EXPECT_DOUBLE_EQ(ui.OverlapRatioOf(i1), ui.OverlapRatioOf(i2));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.Uniform() != b.Uniform();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(5.0, 6.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  SampleStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean, 10.0, 0.1);
  EXPECT_NEAR(stats.Stddev(), 2.0, 0.1);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) count1 += rng.Categorical(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(99), b(99);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(fa.Uniform(), fb.Uniform());
}

// ---------------------------------------------------------------------------
// mathutil
// ---------------------------------------------------------------------------

TEST(MathTest, DigammaKnownValues) {
  // psi(1) = -gamma (Euler-Mascheroni), psi(0.5) = -gamma - 2 ln 2.
  constexpr double kEulerGamma = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -kEulerGamma, 1e-9);
  EXPECT_NEAR(Digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-9);
  // Recurrence psi(x+1) = psi(x) + 1/x.
  EXPECT_NEAR(Digamma(5.3), Digamma(4.3) + 1.0 / 4.3, 1e-10);
}

TEST(MathTest, TrigammaKnownValues) {
  // psi'(1) = pi^2/6.
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-8);
  EXPECT_NEAR(Trigamma(3.7), Trigamma(4.7) + 1.0 / (3.7 * 3.7), 1e-10);
}

TEST(MathTest, LogGammaKnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);  // Gamma(5) = 4!
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(MathTest, SafeLogFloorsAtTiny) {
  EXPECT_LT(SafeLog(0.0), -600.0);
  EXPECT_DOUBLE_EQ(SafeLog(1.0), 0.0);
}

TEST(MathTest, SampleStatsWelford) {
  SampleStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(MathTest, GaussianMleRecoversParameters) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.Gaussian(120.0, 15.0));
  const GaussianFit f = FitGaussianMle(xs);
  EXPECT_NEAR(f.mean, 120.0, 0.5);
  EXPECT_NEAR(f.stddev, 15.0, 0.5);
}

TEST(MathTest, GammaMleRecoversParameters) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.Gamma(4.0, 25.0));
  const GammaFit f = FitGammaMle(xs);
  EXPECT_NEAR(f.shape, 4.0, 0.15);
  EXPECT_NEAR(f.scale, 25.0, 1.0);
}

TEST(MathTest, GammaMleDegenerateInput) {
  // Constant samples: near-deterministic fit, huge shape.
  std::vector<double> xs(100, 50.0);
  const GammaFit f = FitGammaMle(xs);
  EXPECT_GT(f.shape, 1e5);
  EXPECT_NEAR(f.shape * f.scale, 50.0, 1e-6);  // mean preserved
}

TEST(MathTest, ExponentialMle) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.Exponential(0.02));
  const ExponentialFit f = FitExponentialMle(xs);
  EXPECT_NEAR(f.rate, 0.02, 0.001);
}

TEST(StopwatchTest, PhaseTimerAccumulates) {
  PhaseTimer t;
  t.Start();
  t.Stop();
  const double first = t.total_seconds();
  t.Start();
  t.Stop();
  EXPECT_GE(t.total_seconds(), first);
  t.Reset();
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

}  // namespace
}  // namespace pcde
