// Unit tests for the parametric MLE fits used in the Fig. 1(b)/Fig. 11(a)
// comparisons, including the special-function plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "hist/fit.h"
#include "hist/voptimal.h"

namespace pcde {
namespace hist {
namespace {

TEST(GammaPTest, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-10);
  // P(a, 0) = 0, P(a, inf) -> 1.
  EXPECT_DOUBLE_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(3.0, 100.0), 1.0, 1e-10);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaP(0.5, 0.8), std::erf(std::sqrt(0.8)), 1e-10);
}

TEST(GammaPTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.5) {
    const double p = RegularizedGammaP(4.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ParametricFitTest, GaussianCdf) {
  Rng rng(51);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) xs.push_back(rng.Gaussian(100, 10));
  const ParametricFit f = ParametricFit::Fit(FitKind::kGaussian, xs);
  EXPECT_NEAR(f.Cdf(100.0), 0.5, 0.01);
  EXPECT_NEAR(f.Cdf(110.0), 0.8413, 0.01);
  EXPECT_NEAR(f.Mass(90, 110), 0.6827, 0.02);
}

TEST(ParametricFitTest, ExponentialCdf) {
  const std::vector<double> xs = {50.0, 50.0, 50.0};  // mean 50 -> rate 0.02
  const ParametricFit f = ParametricFit::Fit(FitKind::kExponential, xs);
  EXPECT_NEAR(f.param1(), 0.02, 1e-12);
  EXPECT_NEAR(f.Cdf(50.0), 1.0 - std::exp(-1.0), 1e-9);
  EXPECT_DOUBLE_EQ(f.Cdf(-1.0), 0.0);
}

TEST(ParametricFitTest, GammaCdfMedianNearMean) {
  Rng rng(52);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) xs.push_back(rng.Gamma(9.0, 10.0));
  const ParametricFit f = ParametricFit::Fit(FitKind::kGamma, xs);
  // Gamma(9, 10): mean 90; cdf at the mean is slightly above 0.5.
  EXPECT_NEAR(f.Cdf(90.0), 0.544, 0.02);
}

TEST(ParametricFitTest, ToStringDescribes) {
  const ParametricFit f =
      ParametricFit::Fit(FitKind::kGaussian, {1.0, 2.0, 3.0});
  EXPECT_NE(f.ToString().find("Gaussian"), std::string::npos);
}

// ---------------------------------------------------------------------------
// KL raw-vs-fit: the correct family should win (Fig. 11a logic).
// ---------------------------------------------------------------------------

TEST(KlRawVsFitTest, GaussianDataPrefersGaussianFit) {
  Rng rng(53);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Gaussian(120, 8));
  const RawDistribution raw = RawDistribution::FromSamples(xs, 1.0);
  const double kl_gauss =
      KlRawVsFit(raw, ParametricFit::Fit(FitKind::kGaussian, xs));
  const double kl_exp =
      KlRawVsFit(raw, ParametricFit::Fit(FitKind::kExponential, xs));
  EXPECT_LT(kl_gauss, kl_exp);
}

TEST(KlRawVsFitTest, BimodalDataDefeatsAllParametricFamilies) {
  // The Fig. 1(b) situation: no standard family fits a bimodal
  // distribution, while the Auto histogram does.
  Rng rng(54);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.Bernoulli(0.55) ? rng.Gaussian(100, 4)
                                     : rng.Gaussian(160, 6));
  }
  const RawDistribution raw = RawDistribution::FromSamples(xs, 1.0);
  auto auto_hist = BuildAutoHistogram(xs, AutoBucketOptions());
  ASSERT_TRUE(auto_hist.ok());
  const double kl_auto = KlRawVsHistogram(raw, auto_hist.value());
  for (FitKind kind :
       {FitKind::kGaussian, FitKind::kGamma, FitKind::kExponential}) {
    const double kl_fit = KlRawVsFit(raw, ParametricFit::Fit(kind, xs));
    EXPECT_LT(kl_auto, kl_fit) << ParametricFit::Fit(kind, xs).ToString();
  }
}

TEST(KlRawVsHistogramTest, ExactHistogramHasZeroKl) {
  Rng rng(55);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(std::floor(rng.Uniform(0, 50)));
  const RawDistribution raw = RawDistribution::FromSamples(xs, 1.0);
  auto exact = raw.ToExactHistogram();
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(KlRawVsHistogram(raw, exact.value()), 0.0, 1e-9);
}

TEST(KlRawVsHistogramTest, CoarserHistogramHasHigherKl) {
  Rng rng(56);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back(rng.Bernoulli(0.5) ? rng.Gaussian(50, 3)
                                    : rng.Gaussian(90, 3));
  }
  const RawDistribution raw = RawDistribution::FromSamples(xs, 1.0);
  auto h1 = BuildStaticHistogram(xs, 1);
  auto h6 = BuildStaticHistogram(xs, 6);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h6.ok());
  EXPECT_GT(KlRawVsHistogram(raw, h1.value()),
            KlRawVsHistogram(raw, h6.value()));
}

}  // namespace
}  // namespace hist
}  // namespace pcde
