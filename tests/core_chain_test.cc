// Tests for the Eq. 2 chain estimator: exactness on decomposable models,
// equivalence with convolution under independence, separator boundary
// mismatch handling, the independence fallback, and the Theorem 2 entropy
// computation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/chain_estimator.h"
#include "hist/histogram_nd.h"

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;
using hist::HistogramND;
using roadnet::EdgeId;
using roadnet::Path;

InstantiatedVariable VarFromND(std::vector<EdgeId> edges, HistogramND joint) {
  InstantiatedVariable v;
  v.path = Path(std::move(edges));
  v.interval = 16;
  v.joint = std::move(joint);
  v.support = 40;
  return v;
}

InstantiatedVariable UnitVar(EdgeId e, Histogram1D h) {
  return VarFromND({e}, HistogramND::FromHistogram1D(h));
}

HistogramND Fig7Joint() {
  return HistogramND::Make({{20, 30, 50}, {20, 40, 60}},
                           {{{0, 0}, 0.30}, {{1, 0}, 0.25}, {{0, 1}, 0.20},
                            {{1, 1}, 0.25}})
      .value();
}

TEST(ChainTest, SinglePartEqualsSumDistribution) {
  const InstantiatedVariable v = VarFromND({1, 2}, Fig7Joint());
  const Decomposition de = {DecompositionPart{&v, 0}};
  auto est = EstimateFromDecomposition(de);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  auto direct = v.joint.SumDistribution();
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(hist::L1Distance(est.value(), direct.value()), 0.0, 1e-9);
  // And therefore matches the paper's Fig. 7 numbers.
  EXPECT_NEAR(est.value().Mass(Interval(40, 50)), 0.1000, 5e-5);
  EXPECT_NEAR(est.value().Mass(Interval(90, 110)), 0.1250, 5e-5);
}

TEST(ChainTest, DisjointPartsConvolve) {
  const Histogram1D h1 =
      Histogram1D::Make({{0, 10, 0.5}, {10, 20, 0.5}}).value();
  const Histogram1D h2 = Histogram1D::Make({{5, 15, 1.0}}).value();
  const InstantiatedVariable u1 = UnitVar(1, h1);
  const InstantiatedVariable u2 = UnitVar(2, h2);
  const Decomposition de = {DecompositionPart{&u1, 0},
                            DecompositionPart{&u2, 1}};
  auto est = EstimateFromDecomposition(de);
  ASSERT_TRUE(est.ok());
  auto conv = hist::Convolve(h1, h2);
  ASSERT_TRUE(conv.ok());
  EXPECT_NEAR(hist::L1Distance(est.value(), conv.value()), 0.0, 1e-9);
  EXPECT_NEAR(est.value().Mean(), h1.Mean() + h2.Mean(), 1e-9);
}

TEST(ChainTest, ThreeUnitChainMeanAdds) {
  const Histogram1D h = Histogram1D::Make({{10, 20, 0.3}, {20, 40, 0.7}}).value();
  const InstantiatedVariable u1 = UnitVar(1, h);
  const InstantiatedVariable u2 = UnitVar(2, h);
  const InstantiatedVariable u3 = UnitVar(3, h);
  const Decomposition de = {DecompositionPart{&u1, 0},
                            DecompositionPart{&u2, 1},
                            DecompositionPart{&u3, 2}};
  auto est = EstimateFromDecomposition(de);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().Mean(), 3 * h.Mean(), 1e-6);
  EXPECT_DOUBLE_EQ(est.value().Min(), 30.0);
  EXPECT_DOUBLE_EQ(est.value().Max(), 120.0);
}

/// Builds the decomposable ground truth p(a,b,c) = p(a,b) p(c|b) with
/// strong a-b and b-c coupling, plus its pair marginals.
struct ChainModel {
  HistogramND joint3;  // truth
  HistogramND pair12;
  HistogramND pair23;

  ChainModel() {
    // dims: two buckets [0,10) and [10,20) each.
    const std::vector<double> bounds = {0, 10, 20};
    // p(a,b): diagonal-heavy.
    const double pab[2][2] = {{0.4, 0.1}, {0.1, 0.4}};
    // p(c|b): c == b with probability 0.8.
    const double pcb[2][2] = {{0.8, 0.2}, {0.2, 0.8}};
    std::vector<HistogramND::HyperBucket> b3, b12, b23;
    double pb[2] = {0.5, 0.5};
    for (uint32_t a = 0; a < 2; ++a) {
      for (uint32_t b = 0; b < 2; ++b) {
        b12.push_back({{a, b}, pab[a][b]});
        for (uint32_t c = 0; c < 2; ++c) {
          b3.push_back({{a, b, c}, pab[a][b] * pcb[b][c]});
        }
      }
    }
    for (uint32_t b = 0; b < 2; ++b) {
      for (uint32_t c = 0; c < 2; ++c) {
        b23.push_back({{b, c}, pb[b] * pcb[b][c]});
      }
    }
    joint3 = HistogramND::Make({bounds, bounds, bounds}, b3).value();
    pair12 = HistogramND::Make({bounds, bounds}, b12).value();
    pair23 = HistogramND::Make({bounds, bounds}, b23).value();
  }
};

TEST(ChainTest, ExactOnDecomposableModel) {
  // p̂(a,b,c) = p(a,b) p(b,c) / p(b) is exact when the truth really is
  // decomposable with separator b — the chain estimate must match the
  // truth's sum distribution.
  const ChainModel m;
  const InstantiatedVariable v12 = VarFromND({1, 2}, m.pair12);
  const InstantiatedVariable v23 = VarFromND({2, 3}, m.pair23);
  const Decomposition de = {DecompositionPart{&v12, 0},
                            DecompositionPart{&v23, 1}};
  ChainDiagnostics diag;
  auto est = EstimateFromDecomposition(de, ChainOptions(), &diag);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(diag.independence_fallback);
  auto truth = m.joint3.SumDistribution();
  ASSERT_TRUE(truth.ok());
  EXPECT_NEAR(hist::L1Distance(est.value(), truth.value()), 0.0, 1e-9);
  EXPECT_NEAR(est.value().Mean(), truth.value().Mean(), 1e-9);
}

TEST(ChainTest, DependenceChangesTheAnswer) {
  // Treating the two pairs as independent (convolving marginals) must
  // differ from the chain estimate on correlated data; the chain answer
  // is the exact one.
  const ChainModel m;
  const InstantiatedVariable v12 = VarFromND({1, 2}, m.pair12);
  const InstantiatedVariable v23 = VarFromND({2, 3}, m.pair23);
  const Decomposition de = {DecompositionPart{&v12, 0},
                            DecompositionPart{&v23, 1}};
  auto chained = EstimateFromDecomposition(de);
  ASSERT_TRUE(chained.ok());
  ChainOptions independent;
  independent.force_independence = true;
  auto indep = EstimateFromDecomposition(de, independent);
  ASSERT_TRUE(indep.ok());
  // Wait: under forced independence the b edge is double-counted, so the
  // support alone must differ.
  EXPECT_GT(indep.value().Max(), chained.value().Max() + 5.0);
}

TEST(ChainTest, BoundaryMismatchKeepsMassAndMean) {
  // v12's b-dimension has one coarse bucket; v23 splits b at 10. The
  // uniform-within-bucket intersection must preserve total mass and the
  // additive mean.
  const HistogramND pair12 =
      HistogramND::Make({{0, 10, 20}, {0, 20}},
                        {{{0, 0}, 0.5}, {{1, 0}, 0.5}})
          .value();
  const ChainModel m;
  const InstantiatedVariable v12 = VarFromND({1, 2}, pair12);
  const InstantiatedVariable v23 = VarFromND({2, 3}, m.pair23);
  const Decomposition de = {DecompositionPart{&v12, 0},
                            DecompositionPart{&v23, 1}};
  auto est = EstimateFromDecomposition(de);
  ASSERT_TRUE(est.ok());
  double total = 0.0;
  for (const auto& b : est.value().buckets()) total += b.prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // a uniform on [0,20) mean 10; b uniform [0,20) mean 10; c given b
  // mixes to mean 10 -> total mean 30.
  EXPECT_NEAR(est.value().Mean(), 30.0, 1.0);
}

TEST(ChainTest, DisjointSeparatorSupportFallsBackToIndependence) {
  // v12 puts b in [0,20); v23 claims b in [100,120): no overlap at all.
  const HistogramND pair12 =
      HistogramND::Make({{0, 20}, {0, 20}}, {{{0, 0}, 1.0}}).value();
  const HistogramND pair23 =
      HistogramND::Make({{100, 120}, {0, 20}}, {{{0, 0}, 1.0}}).value();
  const InstantiatedVariable v12 = VarFromND({1, 2}, pair12);
  const InstantiatedVariable v23 = VarFromND({2, 3}, pair23);
  const Decomposition de = {DecompositionPart{&v12, 0},
                            DecompositionPart{&v23, 1}};
  ChainDiagnostics diag;
  auto est = EstimateFromDecomposition(de, ChainOptions(), &diag);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(diag.independence_fallback);
}

TEST(ChainTest, OverlappingSeparatorsOfLengthTwo) {
  // Parts <e1,e2,e3> and <e2,e3,e4>: separator = (b, c) of length 2.
  // Build a model where (b, c) are jointly deterministic given the part,
  // and verify mass conservation plus support bounds.
  std::vector<HistogramND::HyperBucket> tri;
  const std::vector<double> bounds = {0, 10, 20};
  // p(a,b,c): a,b,c all equal with p 0.5 each mode.
  tri.push_back({{0, 0, 0}, 0.5});
  tri.push_back({{1, 1, 1}, 0.5});
  const HistogramND j123 =
      HistogramND::Make({bounds, bounds, bounds}, tri).value();
  std::vector<HistogramND::HyperBucket> tri2;
  tri2.push_back({{0, 0, 0}, 0.5});
  tri2.push_back({{1, 1, 1}, 0.5});
  const HistogramND j234 =
      HistogramND::Make({bounds, bounds, bounds}, tri2).value();
  const InstantiatedVariable v123 = VarFromND({1, 2, 3}, j123);
  const InstantiatedVariable v234 = VarFromND({2, 3, 4}, j234);
  const Decomposition de = {DecompositionPart{&v123, 0},
                            DecompositionPart{&v234, 1}};
  auto est = EstimateFromDecomposition(de);
  ASSERT_TRUE(est.ok());
  // Fully correlated: all four edges in [0,10) or all in [10,20).
  EXPECT_NEAR(est.value().Mass(Interval(0, 40)), 0.5, 1e-9);
  EXPECT_NEAR(est.value().Mass(Interval(40, 80)), 0.5, 1e-9);
}

TEST(ChainTest, StateCompactionBoundsStates) {
  // Many-bucket units force sum-state growth; the compaction cap must
  // bound peak states while conserving mean.
  std::vector<hist::Bucket> bs;
  for (int i = 0; i < 16; ++i) bs.emplace_back(i * 10.0, i * 10.0 + 10.0, 1.0 / 16);
  const Histogram1D wide = Histogram1D::Make(bs).value();
  std::vector<InstantiatedVariable> units;
  for (EdgeId e = 0; e < 6; ++e) units.push_back(UnitVar(e, wide));
  Decomposition de;
  for (size_t i = 0; i < units.size(); ++i) {
    de.push_back(DecompositionPart{&units[i], i});
  }
  ChainOptions options;
  options.sums_per_box_cap = 32;
  ChainDiagnostics diag;
  auto est = EstimateFromDecomposition(de, options, &diag);
  ASSERT_TRUE(est.ok());
  EXPECT_LE(diag.max_states, 32u * 16u);
  EXPECT_NEAR(est.value().Mean(), 6 * wide.Mean(), 2.0);
}

TEST(ChainTest, NegativeZeroBoundsMatchPositiveZeroExactly) {
  // Regression: the pre-rewrite kernel keyed state groups on the raw bytes
  // of the box bounds, so an open box [-0.0, x) and [0.0, x) landed in
  // *different* groups. The sweeper interns boxes with signed zeros
  // normalized; a chain whose histograms carry -0.0 bounds must produce
  // the same states (max_states) and the same distribution as the +0.0
  // twin, bucket for bucket.
  auto estimate_with_zero = [](double zero, ChainDiagnostics* diag) {
    const HistogramND pair12 =
        HistogramND::Make({{0, 10, 20}, {zero, 20}},
                          {{{0, 0}, 0.5}, {{1, 0}, 0.5}})
            .value();
    const HistogramND pair23 =
        HistogramND::Make({{zero, 10, 20}, {0, 10, 20}},
                          {{{0, 0}, 0.4}, {{0, 1}, 0.1}, {{1, 1}, 0.5}})
            .value();
    const InstantiatedVariable v12 = VarFromND({1, 2}, pair12);
    const InstantiatedVariable v23 = VarFromND({2, 3}, pair23);
    const Decomposition de = {DecompositionPart{&v12, 0},
                              DecompositionPart{&v23, 1}};
    auto est = EstimateFromDecomposition(de, ChainOptions(), diag);
    EXPECT_TRUE(est.ok()) << est.status().ToString();
    return est.value();
  };
  ChainDiagnostics diag_neg, diag_pos;
  const Histogram1D with_neg = estimate_with_zero(-0.0, &diag_neg);
  const Histogram1D with_pos = estimate_with_zero(0.0, &diag_pos);
  EXPECT_EQ(diag_neg.max_states, diag_pos.max_states);
  ASSERT_EQ(with_neg.NumBuckets(), with_pos.NumBuckets());
  for (size_t b = 0; b < with_neg.NumBuckets(); ++b) {
    EXPECT_DOUBLE_EQ(with_neg.bucket(b).range.lo, with_pos.bucket(b).range.lo);
    EXPECT_DOUBLE_EQ(with_neg.bucket(b).range.hi, with_pos.bucket(b).range.hi);
    EXPECT_DOUBLE_EQ(with_neg.bucket(b).prob, with_pos.bucket(b).prob);
  }
}

TEST(ChainTest, EmptyDecompositionRejected) {
  EXPECT_FALSE(EstimateFromDecomposition({}).ok());
}

// ---------------------------------------------------------------------------
// DecompositionEntropy (Theorem 2)
// ---------------------------------------------------------------------------

TEST(ChainEntropyTest, IndependentUnitsSumTheirEntropies) {
  const Histogram1D h1 = Histogram1D::Make({{0, 8, 1.0}}).value();
  const Histogram1D h2 = Histogram1D::Make({{0, 2, 0.5}, {2, 10, 0.5}}).value();
  const InstantiatedVariable u1 = UnitVar(1, h1);
  const InstantiatedVariable u2 = UnitVar(2, h2);
  const Decomposition de = {DecompositionPart{&u1, 0},
                            DecompositionPart{&u2, 1}};
  EXPECT_NEAR(DecompositionEntropy(de),
              h1.DifferentialEntropy() + h2.DifferentialEntropy(), 1e-12);
}

TEST(ChainEntropyTest, ChainSubtractsSeparatorEntropy) {
  const ChainModel m;
  const InstantiatedVariable v12 = VarFromND({1, 2}, m.pair12);
  const InstantiatedVariable v23 = VarFromND({2, 3}, m.pair23);
  const Decomposition de = {DecompositionPart{&v12, 0},
                            DecompositionPart{&v23, 1}};
  auto sep = m.pair23.MarginalOverDims({0});
  ASSERT_TRUE(sep.ok());
  EXPECT_NEAR(DecompositionEntropy(de),
              m.pair12.DifferentialEntropy() + m.pair23.DifferentialEntropy() -
                  sep.value().DifferentialEntropy(),
              1e-12);
}

TEST(ChainEntropyTest, CoarserDecompositionHasLowerEntropyUnderDependence) {
  // Theorem 3's consequence: with positive mutual information, the pair
  // chain's H_DE is below the unit chain's (which ignores the coupling).
  const ChainModel m;
  const InstantiatedVariable v12 = VarFromND({1, 2}, m.pair12);
  const InstantiatedVariable v23 = VarFromND({2, 3}, m.pair23);
  const InstantiatedVariable u1 = UnitVar(1, m.pair12.Marginal1D(0).value());
  const InstantiatedVariable u2 = UnitVar(2, m.pair12.Marginal1D(1).value());
  const InstantiatedVariable u3 = UnitVar(3, m.pair23.Marginal1D(1).value());
  const Decomposition pairs = {DecompositionPart{&v12, 0},
                               DecompositionPart{&v23, 1}};
  const Decomposition units = {DecompositionPart{&u1, 0},
                               DecompositionPart{&u2, 1},
                               DecompositionPart{&u3, 2}};
  EXPECT_LT(DecompositionEntropy(pairs), DecompositionEntropy(units) - 0.05);
}

TEST(ChainEntropyTest, ExactTruthHasMinimalEntropy) {
  // H_DE of the exact decomposition equals H of the truth; every lossier
  // decomposition is higher (KL = H_DE - H >= 0, Theorem 2).
  const ChainModel m;
  const InstantiatedVariable v123 = VarFromND({1, 2, 3}, m.joint3);
  const InstantiatedVariable v12 = VarFromND({1, 2}, m.pair12);
  const InstantiatedVariable v23 = VarFromND({2, 3}, m.pair23);
  const Decomposition exact = {DecompositionPart{&v123, 0}};
  const Decomposition chain = {DecompositionPart{&v12, 0},
                               DecompositionPart{&v23, 1}};
  // The truth IS decomposable over separator b, so both match here.
  EXPECT_NEAR(DecompositionEntropy(exact), DecompositionEntropy(chain), 1e-9);
  EXPECT_NEAR(DecompositionEntropy(exact), m.joint3.DifferentialEntropy(),
              1e-12);
}

}  // namespace
}  // namespace core
}  // namespace pcde
