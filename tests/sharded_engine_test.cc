// Sharded serving (ISSUE 10): the shard compiler + manifest + routing
// front door, tested against the monolithic Engine as ground truth.
//
//  * Equivalence: across 1/2/4 shards and buffered/mmap inner engines, a
//    path whose edges all fall in one shard's key range is served
//    EXACTLY (bit-identical CostSummary) like the monolithic Engine on
//    the unsplit artifact — the shard holds the same candidate rows in
//    the same order. A 1-shard split even reproduces the source model's
//    fingerprint.
//  * Stitch contract: cross-shard paths succeed, are flagged degradation
//    >= kSubpath with a length-weighted covered_fraction, stamp the
//    MANIFEST fingerprint, bump cross_shard_requests, and land within a
//    documented tolerance of the monolithic mean.
//  * Lazy attach + LRU: shards attach on first touch; max_resident_shards
//    evicts least-recently-touched; per-shard resident bytes stay
//    strictly below the monolithic model's.
//  * Refresh: Swap is a no-op on the same generation, reloads changed
//    shards on a new one, rejects re-sharding and corrupt/missing/short
//    shard files with the old manifest still published.
//  * Corruption sweep (model_artifact_test pattern): byte-flips,
//    truncations, and version skew on the manifest all fail
//    LoadShardManifest/Open with clean Statuses.
//  * Concurrency: EstimateBatch across shards under ASan/TSan serves
//    bit-identically to sequential single-request serving.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/instantiation.h"
#include "core/serialization.h"
#include "core/shard_writer.h"
#include "core/weight_function.h"
#include "roadnet/shortest_path.h"
#include "serving/engine.h"
#include "serving/sharded_engine.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace serving {
namespace {

using core::HybridParams;
using core::PathWeightFunction;
using core::ShardManifest;
using core::ShardWriteOptions;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

constexpr double kDepart = 8 * 3600.0;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ShardedEngineTest : public ::testing::Test {
 protected:
  static std::string Prefix() {
    return "pcde_sharded." + std::to_string(::getpid());
  }

  /// Splits wp_ into `num_shards` shards under a tagged prefix and records
  /// every file the generation owns for suite teardown.
  static std::string WriteGeneration(const PathWeightFunction& wp,
                                     const std::string& tag,
                                     size_t num_shards) {
    const std::string manifest = TempPath(Prefix() + "." + tag + ".pcdemf");
    ShardWriteOptions options;
    options.num_shards = num_shards;
    options.file_prefix = Prefix() + "." + tag;
    auto written = core::WriteModelShards(wp, manifest, options);
    EXPECT_TRUE(written.ok()) << written.status().ToString();
    files_->push_back(manifest);
    if (written.ok()) {
      for (const auto& shard : written.value().shards) {
        files_->push_back(TempPath(shard.file));
      }
    }
    return manifest;
  }

  static void SetUpTestSuite() {
    dataset_ = new traj::Dataset(traj::MakeDatasetA(800));
    graph_ = dataset_->graph.get();
    HybridParams params;
    params.beta = 8;  // low enough that trajectory windows qualify
    wp_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(dataset_->MatchedSlice(1.0)), params));
    wp_alt_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(), params));  // speed-limit-only gen
    ASSERT_NE(wp_->fingerprint(), wp_alt_->fingerprint());
    mono_bin_ = TempPath(Prefix() + ".mono.bin");
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_, mono_bin_).ok());
    files_->push_back(mono_bin_);
    manifest1_ = WriteGeneration(*wp_, "g1", 1);
    manifest2_ = WriteGeneration(*wp_, "g2", 2);
    manifest4_ = WriteGeneration(*wp_, "g4", 4);
  }

  static void TearDownTestSuite() {
    for (const std::string& p : *files_) std::remove(p.c_str());
    files_->clear();
    delete wp_alt_;
    delete wp_;
    delete dataset_;
    wp_alt_ = nullptr;
    wp_ = nullptr;
    dataset_ = nullptr;
    graph_ = nullptr;
  }

  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(std::string p) {
    cleanup_.push_back(p);
    return p;
  }

  static std::unique_ptr<Engine> OpenMono(bool use_mmap) {
    EngineOptions options;
    options.model_path = mono_bin_;
    options.graph = graph_;
    options.num_threads = 1;
    options.query_cache_bytes = 0;
    options.use_mmap = use_mmap;
    auto engine = Engine::Open(std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(engine).value() : nullptr;
  }

  static std::unique_ptr<ShardedEngine> OpenSharded(
      const std::string& manifest, bool use_mmap,
      size_t max_resident_shards = 0, size_t num_threads = 1) {
    ShardedEngineOptions options;
    options.engine.graph = graph_;
    options.engine.num_threads = num_threads;
    options.engine.query_cache_bytes = 0;
    options.engine.use_mmap = use_mmap;
    options.max_resident_shards = max_resident_shards;
    auto engine = ShardedEngine::Open(manifest, std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(engine).value() : nullptr;
  }

  static Path PathBetween(VertexId from, VertexId to) {
    auto p = roadnet::ShortestPath(*graph_, from, to,
                                   roadnet::FreeFlowWeight(*graph_));
    EXPECT_TRUE(p.ok());
    return p.ok() ? p.value() : Path();
  }

  static EstimateRequest RequestFor(Path path) {
    EstimateRequest request;
    request.path = PathSpec::ExplicitPath(std::move(path));
    request.departure_time = kDepart;
    return request;
  }

  static bool SingleShard(const ShardManifest& manifest, const Path& path) {
    const size_t owner = manifest.ShardOf(path[0]);
    for (size_t k = 1; k < path.size(); ++k) {
      if (manifest.ShardOf(path[k]) != owner) return false;
    }
    return true;
  }

  /// Scans shortest paths over a grid of OD pairs and splits them by
  /// whether every edge falls in one shard of `manifest`. The fixture
  /// models are dense enough that both buckets must be non-empty for
  /// any multi-shard split.
  static void ClassifyPaths(const ShardManifest& manifest,
                            std::vector<Path>* in_shard,
                            std::vector<Path>* cross_shard) {
    for (VertexId v = 0; v + 41 < graph_->NumVertices(); v += 7) {
      for (VertexId span : {17, 41}) {
        auto p = roadnet::ShortestPath(*graph_, v, v + span,
                                       roadnet::FreeFlowWeight(*graph_));
        if (!p.ok() || p.value().size() < 2) continue;
        (SingleShard(manifest, p.value()) ? in_shard : cross_shard)
            ->push_back(std::move(p).value());
      }
    }
  }

  static traj::Dataset* dataset_;
  static const Graph* graph_;
  static PathWeightFunction* wp_;      // trajectory-instantiated generation
  static PathWeightFunction* wp_alt_;  // speed-limit-only generation
  static std::string mono_bin_;
  static std::string manifest1_;
  static std::string manifest2_;
  static std::string manifest4_;
  static std::vector<std::string>* files_;
  std::vector<std::string> cleanup_;
};

traj::Dataset* ShardedEngineTest::dataset_ = nullptr;
const Graph* ShardedEngineTest::graph_ = nullptr;
PathWeightFunction* ShardedEngineTest::wp_ = nullptr;
PathWeightFunction* ShardedEngineTest::wp_alt_ = nullptr;
std::string ShardedEngineTest::mono_bin_;
std::string ShardedEngineTest::manifest1_;
std::string ShardedEngineTest::manifest2_;
std::string ShardedEngineTest::manifest4_;
std::vector<std::string>* ShardedEngineTest::files_ =
    new std::vector<std::string>();

// ---------------------------------------------------------------------------
// Shard compiler + manifest round trip
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, ManifestRoundTripsAndPartitionsTheKeySpace) {
  for (const std::string* manifest_path :
       {&manifest1_, &manifest2_, &manifest4_}) {
    auto loaded = core::LoadShardManifest(*manifest_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const ShardManifest& manifest = loaded.value();
    EXPECT_EQ(manifest.source_fingerprint, wp_->fingerprint());
    EXPECT_NE(manifest.fingerprint, 0u);
    ASSERT_FALSE(manifest.shards.empty());
    EXPECT_EQ(manifest.shards.front().key_lo, 0u);
    EXPECT_EQ(manifest.shards.back().key_hi, core::kMaxArtifactEdgeId - 1);
    for (size_t s = 1; s < manifest.shards.size(); ++s) {
      EXPECT_EQ(manifest.shards[s].key_lo, manifest.shards[s - 1].key_hi + 1);
    }
    // Every shard artifact exists next to the manifest with the declared
    // size and fingerprint.
    size_t total_vars = 0;
    for (const auto& shard : manifest.shards) {
      const std::string path = TempPath(shard.file);
      ASSERT_TRUE(std::filesystem::exists(path)) << path;
      EXPECT_EQ(std::filesystem::file_size(path), shard.bytes);
      auto peek = core::PeekBinaryArtifactFingerprint(path);
      ASSERT_TRUE(peek.ok()) << peek.status().ToString();
      EXPECT_EQ(peek.value(), shard.fingerprint);
      auto wp = core::LoadWeightFunctionBinary(path, /*use_mmap=*/false);
      ASSERT_TRUE(wp.ok()) << wp.status().ToString();
      total_vars += wp.value().NumVariables();
    }
    // The shards partition the variable set: no loss, no duplication.
    EXPECT_EQ(total_vars, wp_->NumVariables());
  }
}

TEST_F(ShardedEngineTest, SingleShardSplitReproducesTheSourceFingerprint) {
  auto loaded = core::LoadShardManifest(manifest1_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().shards.size(), 1u);
  // One shard holds every variable in id order: the re-frozen model is the
  // source model, fingerprint and all.
  EXPECT_EQ(loaded.value().shards[0].fingerprint, wp_->fingerprint());
}

TEST_F(ShardedEngineTest, WriterRejectsBadOptions) {
  const std::string manifest = Track(TempPath(Prefix() + ".bad.pcdemf"));
  ShardWriteOptions zero;
  zero.num_shards = 0;
  EXPECT_EQ(core::WriteModelShards(*wp_, manifest, zero).status().code(),
            StatusCode::kInvalidArgument);
  ShardWriteOptions nested;
  nested.file_prefix = "sub/shard";
  EXPECT_EQ(core::WriteModelShards(*wp_, manifest, nested).status().code(),
            StatusCode::kInvalidArgument);
  ShardWriteOptions too_many;
  too_many.num_shards = wp_->NumVariables() + 1;  // > distinct front edges
  EXPECT_EQ(core::WriteModelShards(*wp_, manifest, too_many).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(std::filesystem::exists(manifest));
}

// ---------------------------------------------------------------------------
// Equivalence: single-shard paths are bit-identical to the monolith
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, SingleShardPathsServeBitIdenticallyToMonolithic) {
  for (const std::string* manifest_path :
       {&manifest1_, &manifest2_, &manifest4_}) {
    auto loaded = core::LoadShardManifest(*manifest_path);
    ASSERT_TRUE(loaded.ok());
    std::vector<Path> in_shard;
    std::vector<Path> cross_shard;
    ClassifyPaths(loaded.value(), &in_shard, &cross_shard);
    ASSERT_GE(in_shard.size(), 3u)
        << "fixture graph yields too few single-shard paths";
    if (loaded.value().shards.size() == 1) {
      EXPECT_TRUE(cross_shard.empty())
          << "one shard owns the whole key space";
    }
    for (const bool use_mmap : {false, true}) {
      SCOPED_TRACE(std::string("shards=") +
                   std::to_string(loaded.value().shards.size()) +
                   " mmap=" + std::to_string(use_mmap));
      auto mono = OpenMono(use_mmap);
      auto sharded = OpenSharded(*manifest_path, use_mmap);
      ASSERT_NE(mono, nullptr);
      ASSERT_NE(sharded, nullptr);
      for (const Path& path : in_shard) {
        EstimateRequest request = RequestFor(path);
        request.want_distribution = true;
        auto expected = mono->Estimate(request);
        auto got = sharded->Estimate(request);
        ASSERT_TRUE(expected.ok()) << expected.status().ToString();
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(got->summary.ExactlyEquals(expected->summary))
            << "single-shard path must serve bit-identically";
        ASSERT_TRUE(got->distribution.has_value());
        EXPECT_TRUE(
            got->distribution->BitIdentical(expected->distribution.value()));
        EXPECT_EQ(got->resolved_path.edges(), expected->resolved_path.edges());
        // Provenance: the manifest generation and the sharded epoch, not
        // the inner shard's.
        EXPECT_EQ(got->model_fingerprint, loaded.value().fingerprint);
        EXPECT_EQ(got->epoch, 1u);
      }
      EXPECT_EQ(sharded->stats().cross_shard_requests, 0u);
    }
  }
}

TEST_F(ShardedEngineTest, OdRequestsResolveAndRouteIdentically) {
  auto mono = OpenMono(/*use_mmap=*/false);
  auto sharded = OpenSharded(manifest2_, /*use_mmap=*/false);
  ASSERT_NE(mono, nullptr);
  ASSERT_NE(sharded, nullptr);
  auto manifest = sharded->manifest_snapshot();
  const std::pair<VertexId, VertexId> ods[] = {{0, 30}, {5, 40}, {2, 61}};
  for (const auto& od : ods) {
    EstimateRequest request;
    request.path = PathSpec::OdPair(od.first, od.second);
    request.departure_time = kDepart;
    auto expected = mono->Estimate(request);
    auto got = sharded->Estimate(request);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Both front doors resolve the same deterministic free-flow path.
    EXPECT_EQ(got->resolved_path.edges(), expected->resolved_path.edges());
    if (SingleShard(*manifest, got->resolved_path)) {
      EXPECT_TRUE(got->summary.ExactlyEquals(expected->summary));
    } else {
      EXPECT_GE(got->summary.degradation, core::DegradationLevel::kSubpath);
    }
  }
  // Bad specs fail like the monolithic engine.
  EstimateRequest bad;
  bad.path = PathSpec::OdPair(0, 0);
  EXPECT_EQ(sharded->Estimate(bad).status().code(),
            StatusCode::kInvalidArgument);
  bad.path = PathSpec::ExplicitPath(Path());
  EXPECT_EQ(sharded->Estimate(bad).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Cross-shard stitch contract
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, CrossShardPathsStitchWithHonestProvenance) {
  auto loaded = core::LoadShardManifest(manifest2_);
  ASSERT_TRUE(loaded.ok());
  std::vector<Path> in_shard;
  std::vector<Path> cross_shard;
  ClassifyPaths(loaded.value(), &in_shard, &cross_shard);
  ASSERT_GE(cross_shard.size(), 2u)
      << "fixture graph yields no cross-shard paths at 2 shards";

  auto mono = OpenMono(/*use_mmap=*/false);
  auto sharded = OpenSharded(manifest2_, /*use_mmap=*/false);
  ASSERT_NE(mono, nullptr);
  ASSERT_NE(sharded, nullptr);

  uint64_t expected_cross = 0;
  for (const Path& path : cross_shard) {
    EstimateRequest request = RequestFor(path);
    request.want_distribution = true;
    auto expected = mono->Estimate(request);
    auto got = sharded->Estimate(request);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ++expected_cross;
    // The stitch is explicitly degraded: never reported as exact, coverage
    // length-weighted over the segments.
    EXPECT_GE(got->summary.degradation, core::DegradationLevel::kSubpath);
    EXPECT_GT(got->summary.covered_fraction, 0.0);
    EXPECT_LE(got->summary.covered_fraction, 1.0);
    EXPECT_EQ(got->model_fingerprint, loaded.value().fingerprint);
    ASSERT_TRUE(got->distribution.has_value());
    // Documented accuracy contract: the boundary severs the decomposition,
    // so the stitched mean tracks — but need not equal — the monolithic
    // mean (docs/serving.md "Sharded serving").
    EXPECT_GT(got->summary.mean, 0.0);
    EXPECT_NEAR(got->summary.mean, expected->summary.mean,
                0.25 * expected->summary.mean);
    EXPECT_GE(got->summary.support_lo, 0.0);
    EXPECT_EQ(got->resolved_path.edges(), path.edges());
  }
  EXPECT_EQ(sharded->stats().cross_shard_requests, expected_cross);
  // The stitch is deterministic: repeating a request reproduces the answer
  // bit for bit.
  auto once = sharded->Estimate(RequestFor(cross_shard[0]));
  auto twice = sharded->Estimate(RequestFor(cross_shard[0]));
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_TRUE(once->summary.ExactlyEquals(twice->summary));
}

// ---------------------------------------------------------------------------
// Lazy attach, LRU cap, resident bytes
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, ShardsAttachLazilyAndLruCapEvicts) {
  auto loaded = core::LoadShardManifest(manifest4_);
  ASSERT_TRUE(loaded.ok());
  auto sharded = OpenSharded(manifest4_, /*use_mmap=*/false,
                             /*max_resident_shards=*/1);
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_shards(), 4u);
  // Open loads no payload: nothing resident until the first request.
  EXPECT_EQ(sharded->resident_shards(), 0u);
  EXPECT_EQ(sharded->ResidentBytes(), 0u);

  // Serve paths owned by at least two distinct shards.
  std::vector<Path> in_shard;
  std::vector<Path> cross_shard;
  ClassifyPaths(loaded.value(), &in_shard, &cross_shard);
  ASSERT_GE(in_shard.size(), 2u);
  size_t distinct_owners = 0;
  std::vector<bool> seen(4, false);
  for (const Path& path : in_shard) {
    const size_t owner = loaded.value().ShardOf(path[0]);
    if (!seen[owner]) {
      seen[owner] = true;
      ++distinct_owners;
    }
    auto response = sharded->Estimate(RequestFor(path));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    // The cap holds at every step, not just at the end.
    EXPECT_LE(sharded->resident_shards(), 1u);
  }
  ASSERT_GE(distinct_owners, 2u)
      << "fixture paths all landed in one shard; widen the OD scan";

  const EngineStats stats = sharded->stats();
  EXPECT_EQ(stats.shards_resident, 1u);
  EXPECT_GE(stats.shard_attaches, distinct_owners);
  EXPECT_GE(stats.shard_evictions, distinct_owners - 1);
  // A cross-shard request under cap=1 still works: each segment's attach
  // evicts the other shard, in-flight segments finish on pinned engines.
  if (!cross_shard.empty()) {
    auto stitched = sharded->Estimate(RequestFor(cross_shard[0]));
    ASSERT_TRUE(stitched.ok()) << stitched.status().ToString();
    EXPECT_LE(sharded->resident_shards(), 1u);
  }
}

TEST_F(ShardedEngineTest, PerShardResidentBytesStayBelowMonolithic) {
  auto mono = OpenMono(/*use_mmap=*/false);
  ASSERT_NE(mono, nullptr);
  const size_t mono_bytes = mono->model().ResidentBytes();
  ASSERT_GT(mono_bytes, 0u);
  for (const std::string* manifest_path : {&manifest2_, &manifest4_}) {
    auto loaded = core::LoadShardManifest(*manifest_path);
    ASSERT_TRUE(loaded.ok());
    auto sharded = OpenSharded(*manifest_path, /*use_mmap=*/false);
    ASSERT_NE(sharded, nullptr);
    // Touch every shard so all are attached (unbounded cap).
    std::vector<Path> in_shard;
    std::vector<Path> cross_shard;
    ClassifyPaths(loaded.value(), &in_shard, &cross_shard);
    for (const Path& path : in_shard) {
      ASSERT_TRUE(sharded->Estimate(RequestFor(path)).ok());
    }
    for (const Path& path : cross_shard) {
      ASSERT_TRUE(sharded->Estimate(RequestFor(path)).ok());
    }
    ASSERT_GT(sharded->resident_shards(), 1u);
    // The flat-memory claim sharding exists for: no single shard is as
    // large as the monolithic model.
    EXPECT_LT(sharded->MaxShardResidentBytes(), mono_bytes)
        << "at " << loaded.value().shards.size() << " shards";
    EXPECT_GT(sharded->MaxShardResidentBytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Per-shard refresh (Swap)
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, SwapIsNoOpOnSameGenerationAndReloadsOnNewOne) {
  auto sharded = OpenSharded(manifest2_, /*use_mmap=*/false);
  ASSERT_NE(sharded, nullptr);
  const uint64_t gen_a = sharded->manifest_fingerprint();
  // Attach both shards first so the swap exercises the reload path.
  auto loaded = core::LoadShardManifest(manifest2_);
  ASSERT_TRUE(loaded.ok());
  std::vector<Path> in_shard;
  std::vector<Path> cross_shard;
  ClassifyPaths(loaded.value(), &in_shard, &cross_shard);
  ASSERT_FALSE(cross_shard.empty());
  ASSERT_TRUE(sharded->Estimate(RequestFor(cross_shard[0])).ok());
  ASSERT_EQ(sharded->resident_shards(), 2u);

  // Same generation: short-circuit, same epoch, nothing reloads.
  auto noop = sharded->Swap(manifest2_);
  ASSERT_TRUE(noop.ok()) << noop.status().ToString();
  EXPECT_EQ(noop.value(), 1u);
  EXPECT_EQ(sharded->epoch_sequence(), 1u);

  // A new generation (different model, same shard count, fresh files):
  // the swap publishes it and responses restamp.
  const std::string alt_manifest = WriteGeneration(*wp_alt_, "galt", 2);
  auto swapped = sharded->Swap(alt_manifest);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2u);
  EXPECT_NE(sharded->manifest_fingerprint(), gen_a);

  // Served answers now ExactlyEqual a monolithic engine on the alt model
  // for single-shard paths of the NEW manifest.
  const std::string alt_bin = Track(TempPath(Prefix() + ".alt.bin"));
  ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_alt_, alt_bin).ok());
  EngineOptions mono_options;
  mono_options.model_path = alt_bin;
  mono_options.graph = graph_;
  mono_options.num_threads = 1;
  mono_options.query_cache_bytes = 0;
  auto mono_alt = Engine::Open(std::move(mono_options));
  ASSERT_TRUE(mono_alt.ok()) << mono_alt.status().ToString();
  auto alt_loaded = core::LoadShardManifest(alt_manifest);
  ASSERT_TRUE(alt_loaded.ok());
  size_t checked = 0;
  for (const Path& path : in_shard) {
    if (!SingleShard(alt_loaded.value(), path)) continue;
    auto expected = mono_alt.value()->Estimate(RequestFor(path));
    auto got = sharded->Estimate(RequestFor(path));
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->summary.ExactlyEquals(expected->summary));
    EXPECT_EQ(got->model_fingerprint, alt_loaded.value().fingerprint);
    EXPECT_EQ(got->epoch, 2u);
    ++checked;
  }
  EXPECT_GT(checked, 0u) << "no single-shard path under the alt partition";

  // And back: the original generation republishes under epoch 3.
  auto back = sharded->Swap(manifest2_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), 3u);
  EXPECT_EQ(sharded->manifest_fingerprint(), gen_a);
}

TEST_F(ShardedEngineTest, SwapRejectsReshardingWithOldManifestIntact) {
  auto sharded = OpenSharded(manifest2_, /*use_mmap=*/false);
  ASSERT_NE(sharded, nullptr);
  const uint64_t before = sharded->manifest_fingerprint();
  auto rejected = sharded->Swap(manifest4_);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().ToString().find("re-sharding"),
            std::string::npos)
      << rejected.status().ToString();
  EXPECT_EQ(sharded->manifest_fingerprint(), before);
  EXPECT_EQ(sharded->epoch_sequence(), 1u);
  // Still serving.
  EXPECT_TRUE(sharded->Estimate(RequestFor(PathBetween(0, 30))).ok());
}

// ---------------------------------------------------------------------------
// Manifest + shard-file corruption (model_artifact_test pattern)
// ---------------------------------------------------------------------------

/// Opens a ShardedEngine on `manifest` expecting failure with a clean
/// Status; returns that Status.
Status OpenExpectingFailure(const std::string& manifest,
                            const roadnet::Graph* graph) {
  ShardedEngineOptions options;
  options.engine.graph = graph;
  options.engine.num_threads = 1;
  options.engine.query_cache_bytes = 0;
  auto opened = ShardedEngine::Open(manifest, std::move(options));
  EXPECT_FALSE(opened.ok());
  return opened.ok() ? Status::OK() : opened.status();
}

TEST_F(ShardedEngineTest, ByteFlippedManifestsFailCleanly) {
  const std::vector<char> good = ReadAll(manifest2_);
  ASSERT_GE(good.size(), 64u + 2 * 48u);
  auto original = core::LoadShardManifest(manifest2_);
  ASSERT_TRUE(original.ok());
  const std::string flipped = Track(TempPath(Prefix() + ".flip.pcdemf"));
  // The header's reserved words [48, 64) are the only bytes outside the
  // checksum; a flip there must load as the SAME generation, a flip
  // anywhere else must be rejected with a clean Status.
  size_t rejected = 0;
  for (size_t off = 0; off < good.size(); ++off) {
    std::vector<char> bytes = good;
    bytes[off] = static_cast<char>(bytes[off] ^ 0x5a);
    WriteAll(flipped, bytes);
    auto loaded = core::LoadShardManifest(flipped);
    if (off >= 48 && off < 64) {
      ASSERT_TRUE(loaded.ok()) << "reserved-byte flip at " << off << ": "
                               << loaded.status().ToString();
      EXPECT_EQ(loaded.value().fingerprint, original.value().fingerprint);
      continue;
    }
    ASSERT_FALSE(loaded.ok()) << "undetected flip at offset " << off;
    ++rejected;
    EXPECT_NE(loaded.status().code(), StatusCode::kOk);
  }
  EXPECT_EQ(rejected, good.size() - 16);
  // Spot-check the engine front door rejects a corrupted manifest too.
  std::vector<char> bytes = good;
  bytes[20] = static_cast<char>(bytes[20] ^ 0x5a);  // inside the checksum
  WriteAll(flipped, bytes);
  EXPECT_EQ(OpenExpectingFailure(flipped, graph_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardedEngineTest, TruncatedManifestsFailCleanly) {
  const std::vector<char> good = ReadAll(manifest2_);
  ASSERT_GE(good.size(), 64u + 2 * 48u);
  const std::string cut_path = Track(TempPath(Prefix() + ".cut.pcdemf"));
  const size_t cuts[] = {0,  1,  63,
                         64,  // header only, no records
                         64 + 48,
                         64 + 2 * 48,  // records but no name blob
                         good.size() - 1};
  for (const size_t cut : cuts) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    WriteAll(cut_path, std::vector<char>(good.begin(), good.begin() + cut));
    auto loaded = core::LoadShardManifest(cut_path);
    ASSERT_FALSE(loaded.ok()) << "undetected truncation at " << cut;
    EXPECT_FALSE(OpenExpectingFailure(cut_path, graph_).ok());
  }
  // A manifest that grew a trailing byte is equally torn.
  std::vector<char> grown = good;
  grown.push_back('\0');
  WriteAll(cut_path, grown);
  EXPECT_FALSE(core::LoadShardManifest(cut_path).ok());
}

TEST_F(ShardedEngineTest, VersionSkewNamesTheVersionInTheMessage) {
  std::vector<char> bytes = ReadAll(manifest2_);
  ASSERT_GT(bytes.size(), 64u);
  bytes[8] = 99;  // version field (little-endian u32 at offset 8)
  const std::string skewed = Track(TempPath(Prefix() + ".skew.pcdemf"));
  WriteAll(skewed, bytes);
  auto loaded = core::LoadShardManifest(skewed);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(ShardedEngineTest, MissingShortOrForeignShardFilesFailOpenAndSwap) {
  // A dedicated generation this test may corrupt freely.
  const std::string manifest = WriteGeneration(*wp_, "corrupt", 2);
  auto loaded = core::LoadShardManifest(manifest);
  ASSERT_TRUE(loaded.ok());
  const std::string shard0 = TempPath(loaded.value().shards[0].file);
  const std::vector<char> shard0_bytes = ReadAll(shard0);
  ASSERT_FALSE(shard0_bytes.empty());

  // An engine already serving a DIFFERENT generation: every failed Swap
  // below must leave it publishing that generation.
  auto sharded = OpenSharded(manifest2_, /*use_mmap=*/false);
  ASSERT_NE(sharded, nullptr);
  const uint64_t before = sharded->manifest_fingerprint();

  // (a) Missing shard file.
  ASSERT_EQ(std::remove(shard0.c_str()), 0);
  EXPECT_EQ(OpenExpectingFailure(manifest, graph_).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(sharded->Swap(manifest).status().code(), StatusCode::kNotFound);

  // (b) Short (truncated) shard file: rejected by the size check alone.
  WriteAll(shard0, std::vector<char>(shard0_bytes.begin(),
                                     shard0_bytes.begin() +
                                         shard0_bytes.size() / 2));
  {
    const Status open_status = OpenExpectingFailure(manifest, graph_);
    EXPECT_EQ(open_status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(open_status.ToString().find("manifest declares"),
              std::string::npos)
        << open_status.ToString();
  }
  EXPECT_EQ(sharded->Swap(manifest).status().code(),
            StatusCode::kInvalidArgument);

  // (c) Right size, wrong content: flip a checksum byte so the header
  // fingerprint no longer matches the manifest record.
  std::vector<char> foreign = shard0_bytes;
  foreign[16] = static_cast<char>(foreign[16] ^ 0x5a);
  WriteAll(shard0, foreign);
  {
    const Status open_status = OpenExpectingFailure(manifest, graph_);
    EXPECT_EQ(open_status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(open_status.ToString().find("fingerprint"), std::string::npos)
        << open_status.ToString();
  }
  EXPECT_EQ(sharded->Swap(manifest).status().code(),
            StatusCode::kInvalidArgument);

  // The old generation survived every rejected swap.
  EXPECT_EQ(sharded->manifest_fingerprint(), before);
  EXPECT_EQ(sharded->epoch_sequence(), 1u);
  EXPECT_TRUE(sharded->Estimate(RequestFor(PathBetween(0, 30))).ok());

  // (d) Restored bytes open cleanly again.
  WriteAll(shard0, shard0_bytes);
  auto reopened = OpenSharded(manifest, /*use_mmap=*/false);
  EXPECT_NE(reopened, nullptr);
}

// ---------------------------------------------------------------------------
// Concurrency: batched serving across shards (run under ASan/TSan in CI)
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, ConcurrentBatchMatchesSequentialServing) {
  auto loaded = core::LoadShardManifest(manifest4_);
  ASSERT_TRUE(loaded.ok());
  auto sharded = OpenSharded(manifest4_, /*use_mmap=*/false,
                             /*max_resident_shards=*/0, /*num_threads=*/4);
  auto mono = OpenMono(/*use_mmap=*/false);
  ASSERT_NE(sharded, nullptr);
  ASSERT_NE(mono, nullptr);

  std::vector<Path> in_shard;
  std::vector<Path> cross_shard;
  ClassifyPaths(loaded.value(), &in_shard, &cross_shard);
  ASSERT_FALSE(in_shard.empty());
  std::vector<EstimateRequest> batch;
  for (size_t i = 0; i < 32; ++i) {
    const std::vector<Path>& pool =
        (i % 2 == 0 || cross_shard.empty()) ? in_shard : cross_shard;
    batch.push_back(RequestFor(pool[i % pool.size()]));
  }

  // Sequential ground truth first (fresh engine state is irrelevant: the
  // serve path is stateless outside caches, which are disabled).
  std::vector<CostSummary> sequential;
  for (const EstimateRequest& request : batch) {
    auto response = sharded->Estimate(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    sequential.push_back(response.value().summary);
  }

  auto responses = sharded->EstimateBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    ASSERT_TRUE(responses[i].ok()) << responses[i].status().ToString();
    EXPECT_TRUE(responses[i].value().summary.ExactlyEquals(sequential[i]))
        << "concurrent batch diverged from sequential serving";
    // Single-shard members must also equal the monolith exactly.
    if (SingleShard(loaded.value(), responses[i].value().resolved_path)) {
      auto expected = mono->Estimate(batch[i]);
      ASSERT_TRUE(expected.ok());
      EXPECT_TRUE(
          responses[i].value().summary.ExactlyEquals(expected->summary));
    }
  }
}

}  // namespace
}  // namespace serving
}  // namespace pcde
