// Unit tests for Histogram1D and the Sec. 4.2 bucket machinery. The
// flatten/rearrangement test reproduces the paper's Fig. 7 running example
// to its printed 4-digit precision.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "hist/histogram1d.h"

namespace pcde {
namespace hist {
namespace {

Histogram1D MustMake(std::vector<Bucket> buckets) {
  auto h = Histogram1D::Make(std::move(buckets));
  EXPECT_TRUE(h.ok()) << h.status().ToString();
  return std::move(h).value();
}

// ---------------------------------------------------------------------------
// Construction & validation
// ---------------------------------------------------------------------------

TEST(Histogram1DTest, MakeValidates) {
  EXPECT_FALSE(Histogram1D::Make({}).ok());
  EXPECT_FALSE(Histogram1D::Make({{0, 10, 0.5}, {5, 15, 0.5}}).ok());  // overlap
  EXPECT_FALSE(Histogram1D::Make({{0, 10, 0.7}}).ok());               // mass != 1
  EXPECT_FALSE(Histogram1D::Make({{10, 10, 1.0}}).ok());              // zero width
  EXPECT_FALSE(Histogram1D::Make({{0, 5, -0.1}, {5, 10, 1.1}}).ok()); // negative
  EXPECT_TRUE(Histogram1D::Make({{0, 5, 0.4}, {5, 10, 0.6}}).ok());
  EXPECT_TRUE(Histogram1D::Make({{0, 5, 0.4}, {7, 10, 0.6}}).ok());   // gap ok
}

TEST(Histogram1DTest, MakeSortsBuckets) {
  const Histogram1D h = MustMake({{5, 10, 0.6}, {0, 5, 0.4}});
  EXPECT_DOUBLE_EQ(h.bucket(0).range.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 10.0);
}

TEST(Histogram1DTest, MassRenormalizedWithinTolerance) {
  const Histogram1D h = MustMake({{0, 5, 0.5000004}, {5, 10, 0.4999999}});
  double total = 0;
  for (const auto& b : h.buckets()) total += b.prob;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

// ---------------------------------------------------------------------------
// Moments, CDF, quantiles
// ---------------------------------------------------------------------------

TEST(Histogram1DTest, MeanOfUniform) {
  EXPECT_DOUBLE_EQ(Histogram1D::Single(10, 20).Mean(), 15.0);
}

TEST(Histogram1DTest, VarianceOfUniform) {
  // Var(U[0,12)) = 144/12 = 12.
  EXPECT_NEAR(Histogram1D::Single(0, 12).Variance(), 12.0, 1e-9);
}

TEST(Histogram1DTest, MeanOfTwoBuckets) {
  const Histogram1D h = MustMake({{0, 10, 0.5}, {10, 30, 0.5}});
  EXPECT_DOUBLE_EQ(h.Mean(), 0.5 * 5.0 + 0.5 * 20.0);
}

TEST(Histogram1DTest, CdfPiecewiseLinear) {
  const Histogram1D h = MustMake({{0, 10, 0.5}, {10, 30, 0.5}});
  EXPECT_DOUBLE_EQ(h.Cdf(-1), 0.0);
  EXPECT_DOUBLE_EQ(h.Cdf(5), 0.25);
  EXPECT_DOUBLE_EQ(h.Cdf(10), 0.5);
  EXPECT_DOUBLE_EQ(h.Cdf(20), 0.75);
  EXPECT_DOUBLE_EQ(h.Cdf(30), 1.0);
  EXPECT_DOUBLE_EQ(h.Cdf(100), 1.0);
}

TEST(Histogram1DTest, CdfWithGap) {
  const Histogram1D h = MustMake({{0, 10, 0.5}, {20, 30, 0.5}});
  EXPECT_DOUBLE_EQ(h.Cdf(15), 0.5);  // flat across the gap
}

TEST(Histogram1DTest, QuantileInvertsCdf) {
  const Histogram1D h = MustMake({{0, 10, 0.5}, {10, 30, 0.5}});
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 20.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 30.0);
}

TEST(Histogram1DTest, MassOfSubInterval) {
  const Histogram1D h = MustMake({{0, 10, 0.5}, {10, 30, 0.5}});
  EXPECT_DOUBLE_EQ(h.Mass(Interval(5, 15)), 0.25 + 0.125);
  EXPECT_DOUBLE_EQ(h.Mass(Interval(-5, 50)), 1.0);
  EXPECT_DOUBLE_EQ(h.Mass(Interval(40, 50)), 0.0);
}

TEST(Histogram1DTest, ProbWithinIsTheRoutingObjective) {
  // Fig. 1(a): P1 arrives within 60 min with probability 1.
  const Histogram1D p1 = MustMake({{48, 56, 1.0}});
  const Histogram1D p2 = MustMake({{40, 55, 0.9}, {65, 80, 0.1}});
  EXPECT_DOUBLE_EQ(p1.ProbWithin(60), 1.0);
  EXPECT_DOUBLE_EQ(p2.ProbWithin(60), 0.9);
  // ... although P2 has the lower mean (Sec. 1's motivating example).
  EXPECT_LT(p2.Mean(), p1.Mean());
}

// ---------------------------------------------------------------------------
// Entropy
// ---------------------------------------------------------------------------

TEST(Histogram1DTest, DiscreteEntropyUniformBuckets) {
  const Histogram1D h = MustMake({{0, 1, 0.25}, {1, 2, 0.25}, {2, 3, 0.25},
                                  {3, 4, 0.25}});
  EXPECT_NEAR(h.DiscreteEntropy(), std::log(4.0), 1e-12);
}

TEST(Histogram1DTest, DifferentialEntropyOfUniform) {
  // h(U[a,b)) = ln(b-a).
  EXPECT_NEAR(Histogram1D::Single(0, 8).DifferentialEntropy(), std::log(8.0),
              1e-12);
}

TEST(Histogram1DTest, DifferentialEntropyInvariantUnderSplit) {
  // Splitting a bucket at constant density must not change differential
  // entropy — the property that makes it comparable across bucketizations.
  const Histogram1D coarse = MustMake({{0, 10, 1.0}});
  const Histogram1D fine = MustMake({{0, 5, 0.5}, {5, 10, 0.5}});
  EXPECT_NEAR(coarse.DifferentialEntropy(), fine.DifferentialEntropy(), 1e-12);
  // Discrete entropy is NOT invariant (this is why the benches use the
  // differential form).
  EXPECT_GT(fine.DiscreteEntropy(), coarse.DiscreteEntropy());
}

// ---------------------------------------------------------------------------
// FlattenToDisjoint — the paper's Fig. 7 rearrangement, exact.
// ---------------------------------------------------------------------------

TEST(FlattenTest, PaperFig7Exact) {
  // Input (second table of Fig. 7): overlapping buckets from the
  // hyper-bucket sums.
  std::vector<WeightedInterval> parts = {
      {Interval(40, 70), 0.30},
      {Interval(50, 90), 0.25},
      {Interval(60, 90), 0.20},
      {Interval(70, 110), 0.25},
  };
  auto flat = FlattenToDisjoint(parts);
  ASSERT_TRUE(flat.ok());
  const Histogram1D& h = flat.value();
  // Expected (third table of Fig. 7).
  ASSERT_EQ(h.NumBuckets(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket(0).range.lo, 40.0);
  EXPECT_DOUBLE_EQ(h.bucket(0).range.hi, 50.0);
  EXPECT_NEAR(h.bucket(0).prob, 0.1000, 5e-5);
  EXPECT_DOUBLE_EQ(h.bucket(1).range.hi, 60.0);
  EXPECT_NEAR(h.bucket(1).prob, 0.1625, 5e-5);
  EXPECT_DOUBLE_EQ(h.bucket(2).range.hi, 70.0);
  EXPECT_NEAR(h.bucket(2).prob, 0.2292, 5e-5);
  EXPECT_DOUBLE_EQ(h.bucket(3).range.hi, 90.0);
  EXPECT_NEAR(h.bucket(3).prob, 0.3833, 5e-5);
  EXPECT_DOUBLE_EQ(h.bucket(4).range.hi, 110.0);
  EXPECT_NEAR(h.bucket(4).prob, 0.1250, 5e-5);
}

TEST(FlattenTest, PaperFig7IntermediateStep) {
  // The paper's worked sub-example: buckets [40,70):0.3 and [50,90):0.25
  // split into [40,50):0.1, [50,70):0.325, [70,90):0.125 (after
  // renormalizing the 0.55 total to 1, we check ratios instead).
  std::vector<WeightedInterval> parts = {
      {Interval(40, 70), 0.30},
      {Interval(50, 90), 0.25},
  };
  auto flat = FlattenToDisjoint(parts);
  ASSERT_TRUE(flat.ok());
  const Histogram1D& h = flat.value();
  ASSERT_EQ(h.NumBuckets(), 3u);
  const double scale = 0.55;  // flatten normalizes to total mass 1
  EXPECT_NEAR(h.bucket(0).prob * scale, 0.1, 1e-12);
  EXPECT_NEAR(h.bucket(1).prob * scale, 0.325, 1e-12);
  EXPECT_NEAR(h.bucket(2).prob * scale, 0.125, 1e-12);
}

TEST(FlattenTest, DisjointInputsPassThrough) {
  std::vector<WeightedInterval> parts = {
      {Interval(0, 10), 0.5},
      {Interval(20, 30), 0.5},
  };
  auto flat = FlattenToDisjoint(parts);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.value().NumBuckets(), 2u);
  EXPECT_DOUBLE_EQ(flat.value().bucket(0).prob, 0.5);
}

TEST(FlattenTest, EqualDensityNeighboursMerge) {
  std::vector<WeightedInterval> parts = {
      {Interval(0, 10), 0.5},
      {Interval(10, 20), 0.5},
  };
  auto flat = FlattenToDisjoint(parts);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.value().NumBuckets(), 1u);  // same density either side
}

TEST(FlattenTest, NormalizesTotalMass) {
  std::vector<WeightedInterval> parts = {
      {Interval(0, 10), 2.0},
      {Interval(5, 15), 2.0},
  };
  auto flat = FlattenToDisjoint(parts);
  ASSERT_TRUE(flat.ok());
  double total = 0;
  for (const auto& b : flat.value().buckets()) total += b.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FlattenTest, RejectsBadInput) {
  EXPECT_FALSE(FlattenToDisjoint({}).ok());
  EXPECT_FALSE(FlattenToDisjoint({{Interval(0, 1), -0.5}}).ok());
  EXPECT_FALSE(FlattenToDisjoint({{Interval(3, 3), 1.0}}).ok());
  EXPECT_FALSE(FlattenToDisjoint({{Interval(0, 1), 0.0}}).ok());  // zero mass
}

// Property sweep: flatten preserves mean (the rearrangement redistributes
// within intervals uniformly, so the expected value is unchanged).
class FlattenProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlattenProperty, PreservesMeanAndSupport) {
  Rng rng(GetParam());
  std::vector<WeightedInterval> parts;
  double mean = 0.0, total = 0.0;
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 10));
  for (int i = 0; i < n; ++i) {
    const double lo = rng.Uniform(0, 200);
    const double w = rng.Uniform(1, 60);
    const double p = rng.Uniform(0.01, 1.0);
    parts.push_back({Interval(lo, lo + w), p});
    mean += p * (lo + w / 2);
    total += p;
  }
  mean /= total;
  auto flat = FlattenToDisjoint(parts);
  ASSERT_TRUE(flat.ok());
  EXPECT_NEAR(flat.value().Mean(), mean, 1e-6);
  double lo = 1e30, hi = -1e30;
  for (const auto& w : parts) {
    lo = std::min(lo, w.range.lo);
    hi = std::max(hi, w.range.hi);
  }
  EXPECT_GE(flat.value().Min(), lo - 1e-9);
  EXPECT_LE(flat.value().Max(), hi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlattenProperty,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Convolution
// ---------------------------------------------------------------------------

TEST(ConvolveTest, UniformPlusUniformIsTriangular) {
  const Histogram1D u = Histogram1D::Single(0, 10);
  auto c = Convolve(u, u);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c.value().Min(), 0.0);
  EXPECT_DOUBLE_EQ(c.value().Max(), 20.0);
  EXPECT_NEAR(c.value().Mean(), 10.0, 1e-9);
}

TEST(ConvolveTest, MeanIsAdditive) {
  const Histogram1D a = MustMake({{0, 10, 0.3}, {10, 20, 0.7}});
  const Histogram1D b = MustMake({{5, 15, 0.6}, {15, 35, 0.4}});
  auto c = Convolve(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c.value().Mean(), a.Mean() + b.Mean(), 1e-9);
}

TEST(ConvolveTest, SupportIsMinkowskiSum) {
  const Histogram1D a = MustMake({{10, 20, 1.0}});
  const Histogram1D b = MustMake({{5, 7, 1.0}});
  auto c = Convolve(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c.value().Min(), 15.0);
  EXPECT_DOUBLE_EQ(c.value().Max(), 27.0);
}

TEST(ConvolveTest, RespectsMaxBuckets) {
  Rng rng(17);
  std::vector<Bucket> bs;
  double lo = 0;
  for (int i = 0; i < 20; ++i) {
    const double w = rng.Uniform(1, 5);
    bs.emplace_back(lo, lo + w, 0.05);
    lo += w + rng.Uniform(0, 2);
  }
  const Histogram1D a = MustMake(bs);
  auto c = Convolve(a, a, 16);
  ASSERT_TRUE(c.ok());
  EXPECT_LE(c.value().NumBuckets(), 16u);
  EXPECT_NEAR(c.value().Mean(), 2 * a.Mean(), 0.5);
}

// ---------------------------------------------------------------------------
// Compact
// ---------------------------------------------------------------------------

TEST(CompactTest, NoOpWhenSmallEnough) {
  const Histogram1D h = MustMake({{0, 5, 0.4}, {5, 10, 0.6}});
  EXPECT_EQ(Compact(h, 4).NumBuckets(), 2u);
}

TEST(CompactTest, ReducesToCapAndKeepsMass) {
  std::vector<Bucket> bs;
  for (int i = 0; i < 32; ++i) bs.emplace_back(i, i + 1, 1.0 / 32);
  const Histogram1D h = MustMake(bs);
  const Histogram1D c = Compact(h, 8);
  EXPECT_LE(c.NumBuckets(), 8u);
  double total = 0;
  for (const auto& b : c.buckets()) total += b.prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(c.Mean(), h.Mean(), 1e-9);  // uniform merge preserves the mean
}

TEST(CompactTest, MergesSimilarDensityFirst) {
  // Buckets: two equal-density on the left, a spike on the right. The
  // spike must survive compaction to 2 buckets.
  const Histogram1D h = MustMake({{0, 10, 0.2}, {10, 20, 0.2}, {20, 21, 0.6}});
  const Histogram1D c = Compact(h, 2);
  ASSERT_EQ(c.NumBuckets(), 2u);
  EXPECT_DOUBLE_EQ(c.bucket(1).range.lo, 20.0);
  EXPECT_NEAR(c.bucket(1).prob, 0.6, 1e-9);
}

// ---------------------------------------------------------------------------
// KL divergence and L1
// ---------------------------------------------------------------------------

TEST(KlTest, ZeroOnIdentical) {
  const Histogram1D h = MustMake({{0, 10, 0.5}, {10, 30, 0.5}});
  EXPECT_NEAR(KlDivergence(h, h), 0.0, 1e-9);
}

TEST(KlTest, PositiveOnDifferent) {
  const Histogram1D p = MustMake({{0, 10, 0.9}, {10, 20, 0.1}});
  const Histogram1D q = MustMake({{0, 10, 0.1}, {10, 20, 0.9}});
  EXPECT_GT(KlDivergence(p, q), 0.5);
}

TEST(KlTest, AsymmetricButBothPositive) {
  const Histogram1D p = MustMake({{0, 10, 1.0}});
  const Histogram1D q = MustMake({{0, 10, 0.5}, {10, 20, 0.5}});
  EXPECT_GT(KlDivergence(p, q), 0.0);
  EXPECT_GT(KlDivergence(q, p), 0.0);
}

TEST(KlTest, FiniteWhenSupportsMismatch) {
  const Histogram1D p = MustMake({{0, 10, 1.0}});
  const Histogram1D q = MustMake({{100, 110, 1.0}});
  const double kl = KlDivergence(p, q);
  EXPECT_GT(kl, 1.0);
  EXPECT_TRUE(std::isfinite(kl));
}

TEST(KlTest, RefinementInvariance) {
  // Splitting q's buckets at constant density must not change KL.
  const Histogram1D p = MustMake({{0, 10, 0.3}, {10, 20, 0.7}});
  const Histogram1D q1 = MustMake({{0, 20, 1.0}});
  const Histogram1D q2 = MustMake({{0, 10, 0.5}, {10, 20, 0.5}});
  EXPECT_NEAR(KlDivergence(p, q1), KlDivergence(p, q2), 1e-6);
}

TEST(L1Test, BoundsAndIdentity) {
  const Histogram1D p = MustMake({{0, 10, 1.0}});
  const Histogram1D q = MustMake({{100, 110, 1.0}});
  EXPECT_NEAR(L1Distance(p, q), 2.0, 1e-9);  // disjoint supports
  EXPECT_NEAR(L1Distance(p, p), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

TEST(SampleTest, RespectsBucketMasses) {
  const Histogram1D h = MustMake({{0, 10, 0.25}, {50, 60, 0.75}});
  Rng rng(21);
  int high = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) high += h.Sample(&rng) >= 50.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(high) / n, 0.75, 0.02);
}

// ---------------------------------------------------------------------------
// Serving-visible edge cases (serving::CostSummary is derived from these
// numbers): empty histogram, near-point mass, q = 0/1, budgets outside the
// support — pinned against brute-force integration of the piecewise-
// uniform density.
// ---------------------------------------------------------------------------

/// Brute-force CDF: numerically integrate the piecewise-uniform density up
/// to x, bucket by bucket on a fine midpoint grid (the grid aligns with
/// bucket edges, so the only error is the O(dx^2) midpoint-rule term —
/// independent of the analytic bucket walk being tested).
double BruteCdf(const Histogram1D& h, double x, size_t steps = 20000) {
  double acc = 0.0;
  for (const Bucket& b : h.buckets()) {
    const double hi = std::min(x, b.range.hi);
    if (hi <= b.range.lo) continue;
    const double dx = (hi - b.range.lo) / static_cast<double>(steps);
    const double density = b.prob / b.range.width();
    for (size_t i = 0; i < steps; ++i) acc += dx * density;
  }
  return acc;
}

/// Brute-force raw moment E[X^k] on the same per-bucket midpoint grid.
double BruteMoment(const Histogram1D& h, int k, size_t steps = 20000) {
  double acc = 0.0;
  for (const Bucket& b : h.buckets()) {
    const double dx = b.range.width() / static_cast<double>(steps);
    const double density = b.prob / b.range.width();
    for (size_t i = 0; i < steps; ++i) {
      const double mid = b.range.lo + (static_cast<double>(i) + 0.5) * dx;
      acc += dx * density * std::pow(mid, k);
    }
  }
  return acc;
}

TEST(EdgeCaseTest, EmptyHistogramIsInert) {
  const Histogram1D h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.NumBuckets(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Cdf(123.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // documented fallback
  EXPECT_DOUBLE_EQ(h.Mass(Interval(0.0, 1.0)), 0.0);
}

TEST(EdgeCaseTest, NearPointMassConcentratesEverything) {
  // The narrowest bucket Make admits: all mass in [100, 100 + 1e-9).
  const double w = 1e-9;
  const Histogram1D h = MustMake({{100.0, 100.0 + w, 1.0}});
  EXPECT_NEAR(h.Mean(), 100.0, 1e-6);
  EXPECT_NEAR(h.Variance(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.Cdf(100.0), 0.0);          // budget below support
  EXPECT_DOUBLE_EQ(h.Cdf(100.0 + w), 1.0);      // budget above support
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0 + w);
  EXPECT_NEAR(h.Quantile(0.5), 100.0, 1e-6);
}

TEST(EdgeCaseTest, QuantileAtZeroAndOneAreTheSupportBounds) {
  const Histogram1D h = MustMake({{10, 20, 0.3}, {25, 40, 0.7}});
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 40.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), 40.0);
  // q landing exactly on a bucket boundary mass: right edge of bucket 0.
  EXPECT_DOUBLE_EQ(h.Quantile(0.3), 20.0);
}

TEST(EdgeCaseTest, BudgetOutsideSupportSaturates) {
  const Histogram1D h = MustMake({{10, 20, 0.3}, {25, 40, 0.7}});
  EXPECT_DOUBLE_EQ(h.ProbWithin(0.0), 0.0);     // far below
  EXPECT_DOUBLE_EQ(h.ProbWithin(10.0), 0.0);    // exactly at Min
  EXPECT_DOUBLE_EQ(h.ProbWithin(40.0), 1.0);    // exactly at Max
  EXPECT_DOUBLE_EQ(h.ProbWithin(1e9), 1.0);     // far above
  // Inside the gap between buckets: exactly the first bucket's mass.
  EXPECT_DOUBLE_EQ(h.ProbWithin(22.0), 0.3);
}

TEST(EdgeCaseTest, CdfMeanVarianceMatchBruteForceIntegration) {
  // A gapped, uneven histogram — the shape chain estimates actually have.
  const Histogram1D h =
      MustMake({{5, 8, 0.15}, {8, 9, 0.35}, {12, 20, 0.4}, {30, 31, 0.1}});
  for (double x : {5.5, 8.0, 8.7, 10.0, 13.0, 20.0, 30.5, 31.0}) {
    EXPECT_NEAR(h.Cdf(x), BruteCdf(h, x), 1e-9) << "x = " << x;
  }
  EXPECT_NEAR(h.Mean(), BruteMoment(h, 1), 1e-6);
  const double brute_var =
      BruteMoment(h, 2) - BruteMoment(h, 1) * BruteMoment(h, 1);
  EXPECT_NEAR(h.Variance(), brute_var, 1e-6);
  // Quantile inverts the brute-force CDF.
  for (double q : {0.1, 0.15, 0.5, 0.9, 0.999}) {
    const double x = h.Quantile(q);
    EXPECT_NEAR(BruteCdf(h, x), q, 1e-9) << "q = " << q;
  }
}

TEST(MemoryTest, GrowsWithBuckets) {
  const Histogram1D small = Histogram1D::Single(0, 1);
  const Histogram1D big = MustMake({{0, 1, 0.25}, {1, 2, 0.25}, {2, 3, 0.25},
                                    {3, 4, 0.25}});
  EXPECT_GT(big.MemoryUsageBytes(), small.MemoryUsageBytes());
}

}  // namespace
}  // namespace hist
}  // namespace pcde
