// Tests for the work-stealing thread pool behind EstimateBatch and the
// routing root fan-out. Build with -DPCDE_SANITIZE=address (or thread) to
// exercise the pool under a sanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace pcde {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> ran(kTasks);
  for (auto& r : ran) r.store(0);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&ran, i] { ran[i].fetch_add(1); });
  }
  pool.Wait();
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForCoversTheRange) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<uint64_t>> out(kN);
  for (auto& o : out) o.store(0);
  pool.ParallelFor(kN, [&out](size_t i) { out[i].fetch_add(i + 1); });
  uint64_t total = 0;
  for (auto& o : out) total += o.load();
  EXPECT_EQ(total, kN * (kN + 1) / 2);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      for (int j = 0; j < 5; ++j) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.Wait();  // must include the nested tasks
  EXPECT_EQ(count.load(), 10 + 10 * 5);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No explicit Wait: the destructor must finish the queue first.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersShareOnePool) {
  // The serving::Engine pattern: multiple client threads issue
  // ParallelFor batches against one shared pool. Each call must complete
  // exactly its own items and return (group-scoped wait, not global
  // quiescence) without deadlock.
  ThreadPool pool(2);
  constexpr size_t kCallers = 4;
  constexpr size_t kItems = 400;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kItems, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.ParallelFor(kItems, [&hits, c](size_t i) { hits[c][i] += 1; });
      // The group wait returned: this caller's items must all be done,
      // regardless of the other callers' in-flight work.
      for (size_t i = 0; i < kItems; ++i) {
        EXPECT_EQ(hits[c][i], 1) << "caller " << c << " item " << i;
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(std::accumulate(hits[c].begin(), hits[c].end(), 0),
              static_cast<int>(kItems));
  }
}

TEST(ThreadPoolTest, ParallelForZeroItemsReturnsImmediately) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  // The pool is still fully usable afterwards — the degenerate call must
  // not leave a stuck group behind.
  pool.ParallelFor(10, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ParallelForSingleItemRunsInline) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(1, [&ran_on](size_t i) {
    EXPECT_EQ(i, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, ParallelForCancelledBeforeStartRunsNothing) {
  ThreadPool pool(2);
  CancelToken token;
  token.Cancel();
  std::atomic<int> count{0};
  // A tripped token drains the whole range without invoking fn — and the
  // call still returns (done-accounting reaches n even when every index is
  // claimed-but-skipped).
  pool.ParallelFor(100, [&count](size_t) { count.fetch_add(1); }, &token);
  EXPECT_EQ(count.load(), 0);
  // Single-item inline path honours the token too.
  pool.ParallelFor(1, [&count](size_t) { count.fetch_add(1); }, &token);
  EXPECT_EQ(count.load(), 0);
  // A fresh (untripped) token changes nothing.
  CancelToken live;
  pool.ParallelFor(50, [&count](size_t) { count.fetch_add(1); }, &live);
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCancelMidGroupStopsAndReturns) {
  // Trip the token from inside the group: every item either ran before the
  // trip or was drained after it; the call returns without hanging, and
  // the pool stays usable.
  ThreadPool pool(3);
  CancelToken token;
  constexpr size_t kN = 10000;
  std::atomic<size_t> ran{0};
  pool.ParallelFor(
      kN,
      [&](size_t i) {
        if (i == 64) token.Cancel();
        ran.fetch_add(1);
      },
      &token);
  const size_t after_cancel = ran.load();
  EXPECT_GE(after_cancel, 1u);
  EXPECT_LE(after_cancel, kN);
  std::atomic<size_t> again{0};
  pool.ParallelFor(100, [&again](size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 100u);
}

TEST(ThreadPoolTest, ParallelForNullTokenMatchesPlainOverload) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(256, [&sum](size_t i) { sum.fetch_add(i); }, nullptr);
  EXPECT_EQ(sum.load(), 255u * 256u / 2u);
}

TEST(TwoPoolsTest, CrossPoolSubmissionLandsInTheRightPool) {
  // A worker of pool A submitting into pool B must not index into B's
  // queues with A's worker slot.
  ThreadPool a(2), b(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    a.Submit([&b, &count] { b.Submit([&count] { count.fetch_add(1); }); });
  }
  a.Wait();
  b.Wait();
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace pcde
