// End-to-end integration: GPS traces -> HMM map matching -> trajectory
// store -> W_P instantiation -> cost distribution queries. This is the
// complete data pipeline the paper runs on its fleet data.
#include <gtest/gtest.h>

#include "baselines/accuracy_optimal.h"
#include "baselines/methods.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "mapmatch/hmm_matcher.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace {

using core::HybridParams;
using core::InstantiateWeightFunction;
using core::PathWeightFunction;
using roadnet::Path;
using traj::TrajectoryStore;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new traj::Dataset(traj::MakeDatasetA(1200, /*emit_gps=*/true));
    mapmatch::HmmMatcher matcher(*dataset_->graph, mapmatch::MapMatchConfig());
    auto* matched = new std::vector<traj::MatchedTrajectory>();
    size_t failures = 0;
    for (const auto& trip : dataset_->trips) {
      if (trip.gps.records.size() < 3) continue;
      auto result = matcher.Match(trip.gps);
      if (!result.ok()) {
        ++failures;
        continue;
      }
      matched->push_back(std::move(result.value().matched));
    }
    match_failures_ = failures;
    matched_store_ = new TrajectoryStore(std::move(*matched));
    delete matched;
    truth_store_ = new TrajectoryStore(dataset_->MatchedSlice(1.0));
  }
  static void TearDownTestSuite() {
    delete matched_store_;
    delete truth_store_;
    delete dataset_;
    matched_store_ = nullptr;
    truth_store_ = nullptr;
    dataset_ = nullptr;
  }

  static traj::Dataset* dataset_;
  static TrajectoryStore* matched_store_;
  static TrajectoryStore* truth_store_;
  static size_t match_failures_;
};

traj::Dataset* PipelineTest::dataset_ = nullptr;
TrajectoryStore* PipelineTest::matched_store_ = nullptr;
TrajectoryStore* PipelineTest::truth_store_ = nullptr;
size_t PipelineTest::match_failures_ = 0;

TEST_F(PipelineTest, MostTripsMatchSuccessfully) {
  EXPECT_GT(matched_store_->NumTrajectories(), dataset_->trips.size() * 8 / 10);
  EXPECT_LT(match_failures_, dataset_->trips.size() / 10);
}

TEST_F(PipelineTest, MatchedTotalsTrackTruthTotals) {
  // Aggregate travel time through the matched pipeline should track the
  // simulated truth within a few percent (GPS noise + interpolation).
  double truth_total = 0.0;
  for (size_t i = 0; i < truth_store_->NumTrajectories(); ++i) {
    truth_total += truth_store_->trajectory(i).TotalSeconds();
  }
  double matched_total = 0.0;
  for (size_t i = 0; i < matched_store_->NumTrajectories(); ++i) {
    matched_total += matched_store_->trajectory(i).TotalSeconds();
  }
  const double per_truth =
      truth_total / static_cast<double>(truth_store_->NumTrajectories());
  const double per_matched =
      matched_total / static_cast<double>(matched_store_->NumTrajectories());
  EXPECT_NEAR(per_matched / per_truth, 1.0, 0.15);
}

TEST_F(PipelineTest, InstantiationFromMatchedDataWorks) {
  HybridParams params;
  params.beta = 10;
  core::InstantiationStats stats;
  const PathWeightFunction wp =
      InstantiateWeightFunction(*dataset_->graph, *matched_store_, params,
                                &stats);
  EXPECT_GT(stats.unit_from_trajectories, 0u);
  const auto counts = wp.CountByRank(false);
  ASSERT_TRUE(counts.count(1));
  EXPECT_GT(counts.at(1), 10u);
}

TEST_F(PipelineTest, EndToEndQueryMatchesGroundTruthOnCoveredPaths) {
  // Compare the matched-pipeline estimate against the accuracy-optimal
  // ground truth of the *simulation truth* store, on paths where the
  // truth store actually has qualified trajectories (elsewhere the
  // estimate falls back to speed limits by design).
  HybridParams params;
  params.beta = 8;
  const PathWeightFunction wp =
      InstantiateWeightFunction(*dataset_->graph, *matched_store_, params);
  core::HybridEstimator od = baselines::MakeOd(wp);
  baselines::AccuracyOptimal gt(*truth_store_, params);

  const core::TimeBinning binning(params.alpha_minutes);
  size_t evaluated = 0;
  double ratio_sum = 0.0;
  for (size_t i = 0; i < truth_store_->NumTrajectories() && evaluated < 10;
       ++i) {
    const auto& t = truth_store_->trajectory(i);
    if (t.path.size() < 6) continue;
    // Query the hub-side 4-edge window of the trip (commuter flows merge
    // near hubs, so these windows are the data-rich ones).
    const size_t start = t.path.size() - 4;
    const Path window = t.path.Slice(start, 4);
    const double window_entry = t.edge_enter_times[start];
    const Interval ij = binning.IntervalOf(binning.IndexOf(window_entry));
    auto truth = gt.GroundTruth(window, ij);
    if (!truth.ok()) continue;  // window not data-covered
    auto est = od.EstimateCostDistribution(window, window_entry);
    ASSERT_TRUE(est.ok());
    ratio_sum += est.value().Mean() / truth.value().Mean();
    ++evaluated;
  }
  ASSERT_GE(evaluated, 3u);
  EXPECT_NEAR(ratio_sum / static_cast<double>(evaluated), 1.0, 0.35);
}

TEST_F(PipelineTest, MatchedAndTruthUnitVariablesAgree) {
  // Unit-variable means derived via the GPS+matching pipeline should be
  // close to those derived from the simulation truth.
  HybridParams params;
  params.beta = 8;
  const PathWeightFunction wp_matched =
      InstantiateWeightFunction(*dataset_->graph, *matched_store_, params);
  const PathWeightFunction wp_truth =
      InstantiateWeightFunction(*dataset_->graph, *truth_store_, params);
  size_t compared = 0;
  double err_sum = 0.0;
  for (const auto& v : wp_truth.variables()) {
    if (v.from_speed_limit || v.rank() != 1) continue;
    const auto* m = wp_matched.Lookup(v.path, v.interval);
    if (m == nullptr || m->from_speed_limit) continue;
    auto truth_marg = v.joint.Marginal1D(0);
    auto matched_marg = m->joint.Marginal1D(0);
    if (!truth_marg.ok() || !matched_marg.ok()) continue;
    err_sum += std::fabs(matched_marg.value().Mean() -
                         truth_marg.value().Mean()) /
               truth_marg.value().Mean();
    ++compared;
  }
  ASSERT_GT(compared, 5u);
  EXPECT_LT(err_sum / static_cast<double>(compared), 0.25);
}

}  // namespace
}  // namespace pcde
