// Model artifact tests: the offline-build / online-serve contract.
//
//  * Golden round trips: estimates from build -> save -> load -> estimate
//    are byte-identical to estimating on the just-built model, for both
//    the binary and the text format, including through the QueryCache
//    (whose keys — model fingerprint + frozen variable ids — survive
//    save/load).
//  * Robustness properties: corrupt, truncated, and version-skewed
//    artifacts (text and binary) fail with a clean Status and never crash;
//    scripts/ci.sh runs this suite under ASan.
//  * The binary loader does no per-bucket allocation (counted via a
//    replacement operator new).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <new>
#include <vector>

#include "core/estimator.h"
#include "core/instantiation.h"
#include "core/query_cache.h"
#include "core/serialization.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

// ---------------------------------------------------------------------------
// Allocation counting: replacement global operator new/delete so the test
// can assert the binary loader's allocation count scales with variables,
// not hyper-buckets.
// ---------------------------------------------------------------------------

// GCC flags free() inside a replacement operator delete as mismatched; the
// replacement operator new below is malloc-backed, so the pairing is right.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<size_t> g_alloc_count{0};
}

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size > 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Exact (bitwise) histogram equality — the golden round-trip bar.
void ExpectByteIdentical(const Histogram1D& a, const Histogram1D& b,
                         size_t tag) {
  EXPECT_TRUE(a.BitIdentical(b)) << "query " << tag;
}

class ModelArtifactTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new traj::Dataset(traj::MakeDatasetA(2000));
    store_ = new traj::TrajectoryStore(dataset_->MatchedSlice(1.0));
    HybridParams params;
    params.beta = 15;
    wp_ = new PathWeightFunction(
        InstantiateWeightFunction(*dataset_->graph, *store_, params));
  }
  static void TearDownTestSuite() {
    delete wp_;
    delete store_;
    delete dataset_;
    wp_ = nullptr;
    store_ = nullptr;
    dataset_ = nullptr;
  }

  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(std::string p) {
    cleanup_.push_back(p);
    return p;
  }

  /// Queries over data-instantiated variables (nontrivial decompositions).
  static std::vector<PathQuery> MakeQueries(size_t limit) {
    std::vector<PathQuery> queries;
    for (const InstantiatedVariable& v : wp_->variables()) {
      if (v.from_speed_limit) continue;
      const Interval ij = wp_->binning().IntervalOf(v.interval);
      queries.push_back(PathQuery{v.path, ij.lo + 60.0});
      if (queries.size() >= limit) break;
    }
    return queries;
  }

  /// Every query estimated on `loaded` must be byte-identical to the
  /// just-built model's estimate.
  static void ExpectGoldenEquivalence(const PathWeightFunction& loaded) {
    const std::vector<PathQuery> queries = MakeQueries(40);
    ASSERT_GE(queries.size(), 10u);
    const HybridEstimator built(*wp_);
    const HybridEstimator served(loaded);
    for (size_t i = 0; i < queries.size(); ++i) {
      auto a = built.EstimateCostDistribution(queries[i].path,
                                              queries[i].departure_time);
      auto b = served.EstimateCostDistribution(queries[i].path,
                                               queries[i].departure_time);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      ExpectByteIdentical(a.value(), b.value(), i);
    }
  }

  static traj::Dataset* dataset_;
  static traj::TrajectoryStore* store_;
  static PathWeightFunction* wp_;
  std::vector<std::string> cleanup_;
};

traj::Dataset* ModelArtifactTest::dataset_ = nullptr;
traj::TrajectoryStore* ModelArtifactTest::store_ = nullptr;
PathWeightFunction* ModelArtifactTest::wp_ = nullptr;

// ---------------------------------------------------------------------------
// Golden round trips
// ---------------------------------------------------------------------------

TEST_F(ModelArtifactTest, BinaryRoundTripIsByteIdentical) {
  const std::string path = Track(TempPath("pcde_model.bin"));
  ASSERT_TRUE(SaveWeightFunctionBinary(*wp_, path).ok());
  auto loaded = LoadWeightFunctionBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().fingerprint(), wp_->fingerprint());
  EXPECT_EQ(loaded.value().binning().alpha_seconds(),
            wp_->binning().alpha_seconds());
  ASSERT_EQ(loaded.value().NumVariables(), wp_->NumVariables());
  EXPECT_EQ(loaded.value().CountByRank(false), wp_->CountByRank(false));
  EXPECT_EQ(loaded.value().MemoryUsageBytes(), wp_->MemoryUsageBytes());
  for (size_t i = 0; i < wp_->NumVariables(); ++i) {
    const InstantiatedVariable& a = wp_->variables()[i];
    const InstantiatedVariable& b = loaded.value().variables()[i];
    ASSERT_EQ(b.id, a.id);
    ASSERT_EQ(b.path, a.path);
    ASSERT_EQ(b.interval, a.interval);
    ASSERT_EQ(b.support, a.support);
    ASSERT_EQ(b.from_speed_limit, a.from_speed_limit);
    ASSERT_EQ(b.joint.NumBuckets(), a.joint.NumBuckets());
  }
  ExpectGoldenEquivalence(loaded.value());

  // The generic loader sniffs the binary magic.
  auto sniffed = LoadWeightFunction(path);
  ASSERT_TRUE(sniffed.ok());
  EXPECT_EQ(sniffed.value().fingerprint(), wp_->fingerprint());
}

TEST_F(ModelArtifactTest, MmapLoadIsByteIdenticalToBufferedLoad) {
  const std::string path = Track(TempPath("pcde_model_mmap.bin"));
  ASSERT_TRUE(SaveWeightFunctionBinary(*wp_, path).ok());
  auto mapped = LoadWeightFunctionBinary(path, /*use_mmap=*/true);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().fingerprint(), wp_->fingerprint());
  ASSERT_EQ(mapped.value().NumVariables(), wp_->NumVariables());
  ExpectGoldenEquivalence(mapped.value());
  // Corruption still fails cleanly through the mmap path.
  const std::string bad = Track(TempPath("pcde_model_mmap_bad.bin"));
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(bad, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(LoadWeightFunctionBinary(bad, /*use_mmap=*/true).ok());
}

TEST_F(ModelArtifactTest, TextRoundTripIsByteIdentical) {
  const std::string path = Track(TempPath("pcde_model.txt"));
  ASSERT_TRUE(SaveWeightFunction(*wp_, path).ok());
  auto loaded = LoadWeightFunction(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Text round trips through %.17g, which is double-exact, and the loader
  // does not renormalize — so even the fingerprint survives.
  EXPECT_EQ(loaded.value().fingerprint(), wp_->fingerprint());
  ExpectGoldenEquivalence(loaded.value());
}

TEST_F(ModelArtifactTest, QueryCacheEntriesSurviveSaveLoad) {
  const std::string path = Track(TempPath("pcde_model_cache.bin"));
  ASSERT_TRUE(SaveWeightFunctionBinary(*wp_, path).ok());
  auto loaded = LoadWeightFunctionBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const std::vector<PathQuery> queries = MakeQueries(30);
  ASSERT_GE(queries.size(), 10u);

  // Warm the shared cache through the *built* model, then serve the same
  // queries from the *loaded* model: frozen ids + content fingerprint make
  // every one a hit, and results stay byte-identical to the uncached path.
  QueryCache cache;
  HybridEstimator warmer(*wp_);
  warmer.set_query_cache(&cache);
  for (const PathQuery& q : queries) {
    ASSERT_TRUE(
        warmer.EstimateCostDistribution(q.path, q.departure_time).ok());
  }
  const uint64_t hits_before = cache.stats().hits;

  const HybridEstimator uncached(*wp_);
  HybridEstimator served(loaded.value());
  served.set_query_cache(&cache);
  for (size_t i = 0; i < queries.size(); ++i) {
    EstimateBreakdown breakdown;
    auto b = served.EstimateCostDistribution(queries[i].path,
                                             queries[i].departure_time,
                                             &breakdown);
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(breakdown.cache_hit) << "query " << i;
    auto a = uncached.EstimateCostDistribution(queries[i].path,
                                               queries[i].departure_time);
    ASSERT_TRUE(a.ok());
    ExpectByteIdentical(a.value(), b.value(), i);
  }
  EXPECT_EQ(cache.stats().hits, hits_before + queries.size());
}

TEST_F(ModelArtifactTest, BinaryLoadDoesNoPerBucketAllocation) {
  const std::string path = Track(TempPath("pcde_model_alloc.bin"));
  ASSERT_TRUE(SaveWeightFunctionBinary(*wp_, path).ok());
  const uint64_t total_buckets = wp_->sections().TotalBuckets();
  const size_t num_vars = wp_->NumVariables();
  ASSERT_GT(total_buckets, num_vars);  // buckets dominate variables

  const size_t before = g_alloc_count.load();
  auto loaded = LoadWeightFunctionBinary(path);
  const size_t delta = g_alloc_count.load() - before;
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // One file buffer + O(1) index structures + one Path per variable: the
  // count scales with variables, never with hyper-buckets.
  EXPECT_LT(delta, 2 * num_vars + 512)
      << "per-bucket allocation crept into the load path (buckets: "
      << total_buckets << ")";
}

TEST_F(ModelArtifactTest, FromSectionsRejectsSemanticGarbage) {
  // A checksum says nothing about a *crafted* artifact; FromSections must
  // also enforce the semantic invariants Make gives the text path.
  struct Flat {
    std::vector<uint64_t> seq_off{0, 1};
    std::vector<roadnet::EdgeId> seq_edges{3};
    std::vector<uint32_t> var_seq{0};
    std::vector<int32_t> intervals{0};
    std::vector<uint64_t> supports{1};
    std::vector<uint8_t> flags{0};
    std::vector<uint64_t> var_dim_off{0, 1};
    std::vector<uint64_t> bound_off{0, 2};
    std::vector<double> bounds{20.0, 30.0};
    std::vector<uint64_t> bucket_off{0, 1};
    std::vector<uint64_t> idx_off{0, 1};
    std::vector<double> probs{1.0};
    std::vector<uint32_t> idx{0};

    WeightFunctionSections Sections() const {
      WeightFunctionSections s;
      s.num_vars = 1;
      s.num_seqs = 1;
      s.seq_off = seq_off.data();
      s.seq_edges = seq_edges.data();
      s.var_seq = var_seq.data();
      s.intervals = intervals.data();
      s.supports = supports.data();
      s.flags = flags.data();
      s.var_dim_off = var_dim_off.data();
      s.bound_off = bound_off.data();
      s.bounds = bounds.data();
      s.bucket_off = bucket_off.data();
      s.idx_off = idx_off.data();
      s.probs = probs.data();
      s.idx = idx.data();
      return s;
    }
  };
  const TimeBinning binning(30.0);
  auto load = [&](const Flat& f) {
    return PathWeightFunction::FromSections(binning, nullptr, f.Sections());
  };
  ASSERT_TRUE(load(Flat{}).ok());  // the baseline payload is valid

  Flat nan_prob;
  nan_prob.probs[0] = std::nan("");
  EXPECT_FALSE(load(nan_prob).ok());
  Flat negative;
  negative.probs[0] = -1.0;
  EXPECT_FALSE(load(negative).ok());
  Flat unnormalized;
  unnormalized.probs[0] = 0.5;
  EXPECT_FALSE(load(unnormalized).ok());
  Flat unsorted;
  unsorted.bounds = {30.0, 20.0};
  EXPECT_FALSE(load(unsorted).ok());
  Flat inf_bound;
  inf_bound.bounds = {20.0, std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(load(inf_bound).ok());
}

TEST_F(ModelArtifactTest, SaveRejectsModelsNoLoaderWouldAccept) {
  // Save-side mirror of the loaders' limits: failures surface at build
  // time instead of at query-server start.
  const std::string path = Track(TempPath("pcde_model_unsaveable"));
  {
    // Edge id above the artifact ceiling (live builds allow it).
    WeightFunctionBuilder builder{TimeBinning(30.0)};
    InstantiatedVariable v;
    v.path = roadnet::Path({static_cast<roadnet::EdgeId>(kMaxArtifactEdgeId)});
    v.interval = 0;
    v.joint = hist::HistogramND::FromHistogram1D(Histogram1D::Single(1, 2));
    builder.Add(std::move(v));
    const PathWeightFunction big = std::move(builder).Freeze();
    EXPECT_FALSE(SaveWeightFunctionBinary(big, path).ok());
    EXPECT_FALSE(SaveWeightFunction(big, path).ok());
  }
  {
    // Alpha below the artifact range (sub-second binning).
    WeightFunctionBuilder builder{TimeBinning(0.001)};
    InstantiatedVariable v;
    v.path = roadnet::Path({3});
    v.interval = 0;
    v.joint = hist::HistogramND::FromHistogram1D(Histogram1D::Single(1, 2));
    builder.Add(std::move(v));
    const PathWeightFunction tiny = std::move(builder).Freeze();
    EXPECT_FALSE(SaveWeightFunctionBinary(tiny, path).ok());
    EXPECT_FALSE(SaveWeightFunction(tiny, path).ok());
  }
}

// ---------------------------------------------------------------------------
// Robustness properties: corrupt / truncated / version-skewed artifacts
// ---------------------------------------------------------------------------

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(ModelArtifactTest, BinaryRejectsTruncation) {
  const std::string path = Track(TempPath("pcde_model_trunc.bin"));
  ASSERT_TRUE(SaveWeightFunctionBinary(*wp_, path).ok());
  const std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 1000u);
  const std::string cut = Track(TempPath("pcde_model_cut.bin"));
  std::vector<size_t> cuts = {0,  1,  8,  15, 63, 64, 100, bytes.size() / 4,
                              bytes.size() / 2, bytes.size() - 9,
                              bytes.size() - 1};
  for (size_t n : cuts) {
    WriteAll(cut, std::vector<char>(bytes.begin(),
                                    bytes.begin() + static_cast<long>(n)));
    auto loaded = LoadWeightFunctionBinary(cut);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << n << " loaded";
  }
}

TEST_F(ModelArtifactTest, BinaryRejectsVersionSkew) {
  const std::string path = Track(TempPath("pcde_model_ver.bin"));
  ASSERT_TRUE(SaveWeightFunctionBinary(*wp_, path).ok());
  std::vector<char> bytes = ReadAll(path);
  bytes[8] = static_cast<char>(99);  // header.version
  const std::string skewed = Track(TempPath("pcde_model_skew.bin"));
  WriteAll(skewed, bytes);
  auto loaded = LoadWeightFunctionBinary(skewed);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(ModelArtifactTest, BinarySurvivesByteFlipsWithoutCrashing) {
  const std::string path = Track(TempPath("pcde_model_flip.bin"));
  ASSERT_TRUE(SaveWeightFunctionBinary(*wp_, path).ok());
  const std::vector<char> bytes = ReadAll(path);
  const std::string flipped = Track(TempPath("pcde_model_flipped.bin"));
  // Flip one byte at a spread of offsets (header, table, every payload
  // region). Every load must either fail with a clean Status or — when the
  // flip landed in inter-section padding, which the checksum does not
  // cover — yield a model identical to the original. Run under ASan this
  // is the no-crash / no-OOB-read property.
  const size_t stride = std::max<size_t>(bytes.size() / 192, 1);
  size_t rejected = 0, unaffected = 0;
  for (size_t off = 0; off < bytes.size(); off += stride) {
    std::vector<char> corrupt = bytes;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x5a);
    WriteAll(flipped, corrupt);
    auto loaded = LoadWeightFunctionBinary(flipped);
    if (loaded.ok()) {
      EXPECT_EQ(loaded.value().fingerprint(), wp_->fingerprint())
          << "flip at " << off << " changed the model but loaded";
      ++unaffected;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  // Padding bytes are rare; almost every flip must be rejected.
  EXPECT_GT(rejected, 20 * unaffected);
}

TEST_F(ModelArtifactTest, TextRejectsCorruptRecords) {
  const char* cases[] = {
      "BINNING,abc\n",                                  // non-numeric binning
      "BINNING,-30\n",                                  // negative binning
      "BINNING,0.001\nVAR,16,40,0,1,3\nDIM,20,30\nHB,1,0\n",  // alpha < 1 s
      // Duplicate BINNING (would silently re-bind the alpha grid).
      "BINNING,30\nBINNING,60\nVAR,16,40,0,1,3\nDIM,20,30\nHB,1,0\n",
      "VAR,16,40,0,1,3\nDIM,20,30\nHB,1,0\n",           // v1: no BINNING
      "BINNING,30\nVAR,16,40,0,1,3\nDIM,20,30\nHB,1,0\nBINNING,30\n",
      "BINNING,30\nVAR,xx,40,0,1,3\nDIM,20,30\nHB,1,0\n",   // bad interval
      "BINNING,30\nVAR,16,40,0,abc,3\n",                    // bad rank
      "BINNING,30\nVAR,16,40,0,0\n",                        // rank 0
      "BINNING,30\nVAR,16,40,0,1,99999999999\n",            // edge overflow
      "BINNING,30\nVAR,16,40,0,1,20000000\nDIM,20,30\nHB,1,0\n",
      // ^ edge id above kMaxArtifactEdgeId: must not size the dense
      //   candidate index to it
      "BINNING,30\nVAR,16,40,0,1,3\nDIM,20,zz\nHB,1,0\n",   // bad boundary
      "BINNING,30\nVAR,16,40,0,1,3\nDIM,30,20\nHB,1,0\n",   // unsorted bounds
      "BINNING,30\nVAR,16,40,0,1,3\nDIM,20,30\nHB,x,0\n",   // bad prob
      "BINNING,30\nVAR,16,40,0,1,3\nDIM,20,30\nHB,nan,0\n",  // NaN prob
      "BINNING,30\nVAR,16,40,0,1,3\nDIM,inf,30\nHB,1,0\n",   // inf boundary
      "BINNING,30\nVAR,16,40,0,1,3\nDIM,20,30\nHB,1,7\n",   // index range
      "BINNING,30\nVAR,16,40,0,1,3\nDIM,20,30\nHB,1,0,0\n",  // HB arity
      "BINNING,30\nDIM,20,30\n",                            // DIM before VAR
      "BINNING,30\nWHAT,1\n",                               // unknown record
      "BINNING,30\nVAR,16,40,0,2,3,4\nDIM,20,30\nHB,1,0,0\n",  // missing DIM
      "BINNING,30\nVAR,16,40,0,1,3\nVAR,16,41,0,1,3\n",     // no payload
  };
  const std::string path = Track(TempPath("pcde_model_badtext.txt"));
  for (size_t i = 0; i < sizeof(cases) / sizeof(cases[0]); ++i) {
    {
      std::FILE* f = std::fopen(path.c_str(), "w");
      ASSERT_NE(f, nullptr);
      std::fputs(cases[i], f);
      std::fclose(f);
    }
    auto loaded = LoadWeightFunction(path);
    EXPECT_FALSE(loaded.ok()) << "case " << i << " loaded: " << cases[i];
  }
}

TEST_F(ModelArtifactTest, TextSurvivesLineTruncation) {
  const std::string full = Track(TempPath("pcde_model_full.txt"));
  ASSERT_TRUE(SaveWeightFunction(*wp_, full).ok());
  std::ifstream in(full);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line) && lines.size() < 400;) {
    lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 50u);
  // Cutting the stream mid-model must never crash; it either still forms a
  // valid (smaller) model or fails cleanly.
  const std::string cut = Track(TempPath("pcde_model_cutlines.txt"));
  for (size_t keep : {3u, 10u, 37u, 50u}) {
    std::ofstream out(cut, std::ios::trunc);
    for (size_t i = 0; i < keep; ++i) out << lines[i] << "\n";
    // Additionally chop the last kept line in half.
    out << lines[keep].substr(0, lines[keep].size() / 2) << "\n";
    out.close();
    auto loaded = LoadWeightFunction(cut);  // ok or clean error; no crash
    (void)loaded;
  }
}

TEST_F(ModelArtifactTest, SwapSurvivesCorruptArtifactSweep) {
  // The corruption sweep above, through serving::Engine::Swap: a live
  // engine fed every flavor of bad artifact must reject each one with a
  // clean Status and keep serving byte-identically. The engine starts on a
  // *different* model (the speed-limit baseline) so Swap's header-checksum
  // short-circuit never skips the full load of the corrupted payloads.
  HybridParams params;
  params.beta = 15;
  PathWeightFunction base = InstantiateWeightFunction(
      *dataset_->graph, traj::TrajectoryStore(), params);
  const uint64_t base_fp = base.fingerprint();
  ASSERT_NE(base_fp, wp_->fingerprint());
  const std::string base_path = Track(TempPath("pcde_model_swap_base.bin"));
  const std::string good = Track(TempPath("pcde_model_swap_good.bin"));
  ASSERT_TRUE(SaveWeightFunctionBinary(base, base_path).ok());
  ASSERT_TRUE(SaveWeightFunctionBinary(*wp_, good).ok());

  serving::EngineOptions options;
  options.model_path = base_path;
  options.graph = dataset_->graph.get();
  options.num_threads = 1;
  options.query_cache_bytes = 0;
  auto opened = serving::Engine::Open(std::move(options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serving::Engine& engine = *opened.value();

  const std::vector<PathQuery> queries = MakeQueries(1);
  ASSERT_FALSE(queries.empty());
  serving::EstimateRequest request;
  request.path = serving::PathSpec::ExplicitPath(queries[0].path);
  request.departure_time = queries[0].departure_time;
  auto baseline = engine.Estimate(request);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::vector<char> bytes = ReadAll(good);
  const std::string bad = Track(TempPath("pcde_model_swap_bad.bin"));

  // Byte-flip sweep. Every Swap attempt must either fail (leaving the
  // baseline epoch serving) or — when the flip landed in checksum-exempt
  // inter-section padding — publish a model identical to the original, in
  // which case the engine is reset to the baseline generation for the next
  // probe. Under ASan this doubles as the no-OOB-read property of the
  // whole load-validate-publish path.
  const size_t stride = std::max<size_t>(bytes.size() / 192, 1);
  size_t rejected = 0, unaffected = 0;
  for (size_t off = 0; off < bytes.size(); off += stride) {
    std::vector<char> corrupt = bytes;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x5a);
    WriteAll(bad, corrupt);
    auto swapped = engine.Swap(bad);
    if (swapped.ok()) {
      EXPECT_EQ(engine.model().fingerprint(), wp_->fingerprint())
          << "flip at " << off << " changed the model but swapped in";
      ++unaffected;
      ASSERT_TRUE(engine.Swap(base_path).ok());
    } else {
      EXPECT_EQ(engine.model().fingerprint(), base_fp) << "flip at " << off;
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  // Padding bytes are rare; almost every flip must be rejected.
  EXPECT_GT(rejected, 20 * unaffected);

  // Truncations and version skew through the same live engine.
  const uint64_t sequence = engine.epoch_sequence();
  for (size_t n : {size_t{0}, size_t{15}, size_t{63}, size_t{100},
                   bytes.size() / 2, bytes.size() - 1}) {
    WriteAll(bad, std::vector<char>(bytes.begin(),
                                    bytes.begin() + static_cast<long>(n)));
    EXPECT_FALSE(engine.Swap(bad).ok()) << "truncation at " << n;
  }
  {
    std::vector<char> skewed = bytes;
    skewed[8] = static_cast<char>(99);  // header.version
    WriteAll(bad, skewed);
    EXPECT_FALSE(engine.Swap(bad).ok());
  }
  EXPECT_EQ(engine.epoch_sequence(), sequence);

  // Serving was never perturbed by any of it.
  auto after = engine.Estimate(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after.value().summary.ExactlyEquals(baseline.value().summary));
  EXPECT_EQ(after.value().model_fingerprint, base_fp);

  // And the undamaged artifact still swaps in cleanly afterwards.
  auto swapped = engine.Swap(good);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(engine.model().fingerprint(), wp_->fingerprint());
}

}  // namespace
}  // namespace core
}  // namespace pcde
