// Tests for the candidate array, shift-and-enlarge temporal relevance
// (Eq. 3), and Algorithm 1 — including the paper's Table 1 example with
// its expected coarsest decomposition DE_coa = (<e1..e4>, <e4,e5>), and
// the Sec. 4.1.1 coarser-relation examples.
#include <gtest/gtest.h>

#include "core/decomposition.h"
#include "hist/histogram_nd.h"

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;
using hist::HistogramND;
using roadnet::EdgeId;
using roadnet::Path;

/// A variable over `edges` with every edge cost uniform in [10, 20).
InstantiatedVariable MakeVar(std::vector<EdgeId> edges, int32_t interval) {
  InstantiatedVariable v;
  v.path = Path(edges);
  v.interval = interval;
  std::vector<std::vector<double>> bounds(edges.size(),
                                          std::vector<double>{10.0, 20.0});
  v.joint = HistogramND::Make(
                bounds,
                {HistogramND::HyperBucket{
                    std::vector<uint32_t>(edges.size(), 0), 1.0}})
                .value();
  v.support = 40;
  return v;
}

/// The Table 1 fixture: query <e1..e5> (edge ids 1..5), all variables in
/// the interval containing the departure time.
class Table1Test : public ::testing::Test {
 protected:
  Table1Test() : builder_(TimeBinning(30.0)) {
    depart_ = 8 * 3600.0;  // 8:00, interval 16
    interval_ = builder_.binning().IndexOf(depart_);
    // Row e1.
    builder_.Add(MakeVar({1}, interval_));
    builder_.Add(MakeVar({1, 2}, interval_));
    builder_.Add(MakeVar({1, 2, 3}, interval_));
    builder_.Add(MakeVar({1, 2, 3, 4}, interval_));
    // Row e2.
    builder_.Add(MakeVar({2}, interval_));
    builder_.Add(MakeVar({2, 3}, interval_));
    builder_.Add(MakeVar({2, 3, 4}, interval_));
    // Row e3.
    builder_.Add(MakeVar({3}, interval_));
    builder_.Add(MakeVar({3, 4}, interval_));
    // Row e4.
    builder_.Add(MakeVar({4}, interval_));
    builder_.Add(MakeVar({4, 5}, interval_));
    // Row e5.
    builder_.Add(MakeVar({5}, interval_));
    // Speed-limit fallbacks (always present after a real instantiation).
    for (EdgeId e = 1; e <= 5; ++e) {
      InstantiatedVariable fallback = MakeVar({e}, kAllDayInterval);
      fallback.from_speed_limit = true;
      fallback.support = 0;
      builder_.Add(std::move(fallback));
    }
    query_ = Path({1, 2, 3, 4, 5});
  }

  /// Freezes the (possibly augmented) builder into the serving model.
  PathWeightFunction Freeze() { return std::move(builder_).Freeze(); }

  WeightFunctionBuilder builder_;
  double depart_;
  int32_t interval_;
  Path query_;
};

TEST_F(Table1Test, CandidateArrayMatchesTable1) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_);
  ASSERT_TRUE(array.ok()) << array.status().ToString();
  const auto& rows = array.value().rows;
  ASSERT_EQ(rows.size(), 5u);
  auto max_rank = [&](size_t row) {
    const InstantiatedVariable* v = rows[row].Highest();
    return v == nullptr ? size_t{0} : v->rank();
  };
  EXPECT_EQ(max_rank(0), 4u);  // V<e1,e2,e3,e4>
  EXPECT_EQ(max_rank(1), 3u);  // V<e2,e3,e4>
  EXPECT_EQ(max_rank(2), 2u);  // V<e3,e4>
  EXPECT_EQ(max_rank(3), 2u);  // V<e4,e5>
  EXPECT_EQ(max_rank(4), 1u);  // V<e5>
}

TEST_F(Table1Test, CoarsestDecompositionMatchesPaper) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_);
  ASSERT_TRUE(array.ok());
  const Decomposition de = DecompositionBuilder::Coarsest(array.value());
  // DE_coa = (<e1,e2,e3,e4>, <e4,e5>).
  ASSERT_EQ(de.size(), 2u);
  EXPECT_EQ(de[0].start, 0u);
  EXPECT_EQ(de[0].variable->path, Path({1, 2, 3, 4}));
  EXPECT_EQ(de[1].start, 3u);
  EXPECT_EQ(de[1].variable->path, Path({4, 5}));
  EXPECT_TRUE(DecompositionBuilder::Validate(de, query_).ok());
}

TEST_F(Table1Test, ShiftAndEnlargeWindows) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_);
  ASSERT_TRUE(array.ok());
  const auto& rows = array.value().rows;
  // UI_1 = [t, t]; UI_k grows by [10, 20) per edge (Eq. 3).
  EXPECT_EQ(rows[0].departure_window, Interval(depart_, depart_));
  EXPECT_EQ(rows[1].departure_window, Interval(depart_ + 10, depart_ + 20));
  EXPECT_EQ(rows[2].departure_window, Interval(depart_ + 20, depart_ + 40));
  EXPECT_EQ(rows[4].departure_window, Interval(depart_ + 40, depart_ + 80));
}

TEST_F(Table1Test, TemporallyIrrelevantVariablesExcluded) {
  // A rank-5 variable in the 15:00 interval must not be picked for an
  // 8:00 departure.
  const int32_t wrong = builder_.binning().IndexOf(15 * 3600.0);
  builder_.Add(MakeVar({1, 2, 3, 4, 5}, wrong));
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_);
  ASSERT_TRUE(array.ok());
  EXPECT_EQ(array.value().rows[0].Highest()->rank(), 4u);
  // For a 15:00 departure it is picked (and covers the whole path).
  auto pm = builder.BuildCandidateArray(query_, 15 * 3600.0 + 60.0);
  ASSERT_TRUE(pm.ok());
  EXPECT_EQ(pm.value().rows[0].Highest()->rank(), 5u);
  const Decomposition de = DecompositionBuilder::Coarsest(pm.value());
  ASSERT_EQ(de.size(), 1u);
}

TEST_F(Table1Test, DepartureNearIntervalEdgePicksNextInterval) {
  // Departing at 8:29:55, the window for later edges shifts into the
  // [8:30, 9:00) interval; with variables only in interval 16 the rank-1
  // fallback logic still finds the *most overlapping* interval.
  builder_.Add(MakeVar({2}, interval_ + 1));
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  const double late = 8 * 3600.0 + 1795.0;
  auto array = builder.BuildCandidateArray(query_, late);
  ASSERT_TRUE(array.ok());
  // Row 1's window is [late+10, late+20) in interval 17.
  EXPECT_EQ(array.value().rows[1].by_rank[0]->interval, interval_ + 1);
}

TEST_F(Table1Test, RankCapLimitsCandidates) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_, /*rank_cap=*/2);
  ASSERT_TRUE(array.ok());
  const Decomposition de = DecompositionBuilder::Coarsest(array.value());
  // OD-2: pairwise chain (<e1,e2>, <e2,e3>, <e3,e4>, <e4,e5>).
  ASSERT_EQ(de.size(), 4u);
  for (const auto& part : de) EXPECT_LE(part.rank(), 2u);
  EXPECT_TRUE(DecompositionBuilder::Validate(de, query_).ok());
}

TEST_F(Table1Test, PairwiseChainIsHp) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_, 2);
  ASSERT_TRUE(array.ok());
  const Decomposition de = DecompositionBuilder::PairwiseChain(array.value());
  ASSERT_EQ(de.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(de[i].start, i);
    EXPECT_EQ(de[i].rank(), 2u);
  }
  EXPECT_TRUE(DecompositionBuilder::Validate(de, query_).ok());
}

TEST_F(Table1Test, UnitChainIsLb) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_, 1);
  ASSERT_TRUE(array.ok());
  const Decomposition de = DecompositionBuilder::UnitChain(array.value());
  ASSERT_EQ(de.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(de[i].rank(), 1u);
  EXPECT_TRUE(DecompositionBuilder::Validate(de, query_).ok());
}

TEST_F(Table1Test, RandomDecompositionsAreValid) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_);
  ASSERT_TRUE(array.ok());
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const Decomposition de =
        DecompositionBuilder::Random(array.value(), &rng);
    EXPECT_TRUE(DecompositionBuilder::Validate(de, query_).ok())
        << "seed " << seed;
  }
}

TEST_F(Table1Test, CoarsestIsCoarserThanAlternatives) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  auto array = builder.BuildCandidateArray(query_, depart_);
  ASSERT_TRUE(array.ok());
  const Decomposition coarsest =
      DecompositionBuilder::Coarsest(array.value());
  const Decomposition units = DecompositionBuilder::UnitChain(array.value());
  const Decomposition pairs =
      DecompositionBuilder::PairwiseChain(array.value());
  EXPECT_TRUE(DecompositionBuilder::IsCoarser(coarsest, units));
  EXPECT_TRUE(DecompositionBuilder::IsCoarser(coarsest, pairs));
  EXPECT_FALSE(DecompositionBuilder::IsCoarser(units, coarsest));
}

TEST_F(Table1Test, Section411CoarserExamples) {
  const PathWeightFunction wp_ = Freeze();
  // DE1 = units, DE2 = (<e1,e2,e3>, <e2,e3,e4>, <e5>),
  // DE3 = (<e1,e2,e3>, <e3,e4>, <e5>): DE2 coarser than both DE1 and DE3.
  auto part = [&](std::vector<EdgeId> edges, size_t start) {
    const InstantiatedVariable* v =
        wp_.Lookup(Path(std::move(edges)), interval_);
    EXPECT_NE(v, nullptr);
    return DecompositionPart{v, start};
  };
  const Decomposition de1 = {part({1}, 0), part({2}, 1), part({3}, 2),
                             part({4}, 3), part({5}, 4)};
  const Decomposition de2 = {part({1, 2, 3}, 0), part({2, 3, 4}, 1),
                             part({5}, 4)};
  const Decomposition de3 = {part({1, 2, 3}, 0), part({3, 4}, 2),
                             part({5}, 4)};
  EXPECT_TRUE(DecompositionBuilder::IsCoarser(de2, de3));
  EXPECT_TRUE(DecompositionBuilder::IsCoarser(de2, de1));
  EXPECT_FALSE(DecompositionBuilder::IsCoarser(de3, de2));
  EXPECT_TRUE(DecompositionBuilder::Validate(de1, query_).ok());
  EXPECT_TRUE(DecompositionBuilder::Validate(de2, query_).ok());
  EXPECT_TRUE(DecompositionBuilder::Validate(de3, query_).ok());
}

TEST_F(Table1Test, ValidateRejectsBrokenDecompositions) {
  const PathWeightFunction wp_ = Freeze();
  auto part = [&](std::vector<EdgeId> edges, size_t start) {
    const InstantiatedVariable* v =
        wp_.Lookup(Path(std::move(edges)), interval_);
    EXPECT_NE(v, nullptr);
    return DecompositionPart{v, start};
  };
  // Not covering.
  EXPECT_FALSE(DecompositionBuilder::Validate(
                   {part({1, 2, 3}, 0), part({5}, 4)}, query_)
                   .ok());
  // Sub-path of another part.
  EXPECT_FALSE(DecompositionBuilder::Validate(
                   {part({1, 2, 3, 4}, 0), part({2, 3}, 1), part({4, 5}, 3)},
                   query_)
                   .ok());
  // Wrong order.
  EXPECT_FALSE(DecompositionBuilder::Validate(
                   {part({4, 5}, 3), part({1, 2, 3, 4}, 0)}, query_)
                   .ok());
  // Mismatched position.
  EXPECT_FALSE(
      DecompositionBuilder::Validate({part({1, 2, 3, 4}, 1), part({5}, 4)},
                                     query_)
          .ok());
  // Empty.
  EXPECT_FALSE(DecompositionBuilder::Validate({}, query_).ok());
}

TEST_F(Table1Test, EmptyQueryRejected) {
  const PathWeightFunction wp_ = Freeze();
  DecompositionBuilder builder(wp_);
  EXPECT_FALSE(builder.BuildCandidateArray(Path(), depart_).ok());
}

TEST_F(Table1Test, MissingUnitVariableFailsPrecondition) {
  // An empty frozen model has no variable of any kind.
  WeightFunctionBuilder eb(TimeBinning(30.0));
  const PathWeightFunction empty = std::move(eb).Freeze();
  DecompositionBuilder builder2(empty);
  auto array = builder2.BuildCandidateArray(Path({1, 2}), depart_);
  EXPECT_FALSE(array.ok());
  EXPECT_EQ(array.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace core
}  // namespace pcde
