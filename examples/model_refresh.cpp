// Zero-downtime model refresh end to end: build generation 1 from the
// first trajectory batch, serve it through the Engine, delta-rebuild
// generation 2 in process when the second batch arrives
// (WeightFunctionBuilder::FromFrozen + InstantiateIntoBuilder), publish it
// with Engine::Swap — after demonstrating that a corrupt artifact is
// rejected while the old epoch keeps serving — and serve again from the
// new epoch. Every served summary is cross-checked ExactlyEquals against
// an engine adopting a directly built counterpart model, and the delta
// rebuild is required to be fingerprint-identical to folding both batches
// into one fresh builder (the sequential full build); any divergence exits
// nonzero, so this example doubles as a CI gate.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/scoped_file.h"
#include "common/stopwatch.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("model refresh: build -> serve -> delta rebuild -> swap -> serve\n\n");

  // Two trajectory batches over one network: what the collector has on day
  // one, and what arrives before the refresh.
  traj::Dataset city = traj::MakeDatasetA(2000);
  std::vector<traj::MatchedTrajectory> all = city.MatchedSlice(1.0);
  const size_t half = all.size() / 2;
  const traj::TrajectoryStore batch1(
      std::vector<traj::MatchedTrajectory>(all.begin(), all.begin() + half));
  const traj::TrajectoryStore batch2(
      std::vector<traj::MatchedTrajectory>(all.begin() + half, all.end()));
  core::HybridParams params;
  params.beta = 8;  // each half batch alone must qualify some windows

  // 1. Generation 1 from batch 1, frozen and published as an artifact.
  Stopwatch watch;
  core::WeightFunctionBuilder builder1{core::TimeBinning(params.alpha_minutes)};
  if (!core::InstantiateIntoBuilder(*city.graph, batch1, params, &builder1)
           .ok()) {
    std::printf("generation-1 instantiation failed\n");
    return 1;
  }
  // Live-data builds go through TryFreeze: a bad batch degrades into a
  // clean error and the serve loop keeps its current model, instead of the
  // aborting Freeze() taking the server down.
  auto frozen1 = std::move(builder1).TryFreeze();
  if (!frozen1.ok()) {
    std::printf("generation-1 freeze failed: %s\n",
                frozen1.status().ToString().c_str());
    return 1;
  }
  core::PathWeightFunction generation1 = std::move(frozen1).value();
  const std::string artifact = MakeTempArtifactPath("pcde_refresh_example");
  if (!core::SaveWeightFunctionBinary(generation1, artifact).ok()) {
    std::printf("artifact save failed\n");
    return 1;
  }
  const ScopedFileRemover cleanup(artifact);
  std::printf("generation 1: %zu variables (model %016llx) in %.1f s\n",
              generation1.NumVariables(),
              static_cast<unsigned long long>(generation1.fingerprint()),
              watch.ElapsedSeconds());

  // 2. The server opens the artifact; requests carry epoch + fingerprint.
  serving::EngineOptions options;
  options.model_path = artifact;
  options.graph = city.graph.get();
  auto opened = serving::Engine::Open(options);
  if (!opened.ok()) {
    std::printf("Engine::Open failed: %s\n",
                opened.status().ToString().c_str());
    return 1;
  }
  serving::Engine& engine = *opened.value();

  // The query served across the refresh: the first reasonably long path of
  // batch 1 (present in both generations).
  serving::EstimateRequest request;
  bool have_query = false;
  for (size_t i = 0; i < batch1.NumTrajectories() && !have_query; ++i) {
    const traj::MatchedTrajectory& t = batch1.trajectory(i);
    if (t.path.size() < 8) continue;
    request.path = serving::PathSpec::ExplicitPath(t.path.Slice(0, 8));
    request.departure_time = t.DepartureTime();
    have_query = true;
  }
  if (!have_query) {
    std::printf("no servable query in batch 1\n");
    return 1;
  }

  // Exact-counterpart gate for epoch 1: an engine adopting generation 1
  // directly must answer bit-identically to the artifact-serving engine.
  auto adopt = [&](core::PathWeightFunction model)
      -> std::unique_ptr<serving::Engine> {
    serving::EngineOptions adopt_options;
    adopt_options.graph = city.graph.get();
    auto adopted = serving::Engine::Open(std::move(model), adopt_options);
    if (!adopted.ok()) {
      std::printf("adopting Engine::Open failed: %s\n",
                  adopted.status().ToString().c_str());
      return nullptr;
    }
    return std::move(adopted).value();
  };
  core::WeightFunctionBuilder copy1 =
      core::WeightFunctionBuilder::FromFrozen(engine.model());
  auto refrozen1 = std::move(copy1).TryFreeze();
  if (!refrozen1.ok()) {
    std::printf("counterpart-1 freeze failed: %s\n",
                refrozen1.status().ToString().c_str());
    return 1;
  }
  auto counterpart1 = adopt(std::move(refrozen1).value());
  if (counterpart1 == nullptr) return 1;
  auto served1 = engine.Estimate(request);
  auto expected1 = counterpart1->Estimate(request);
  if (!served1.ok() || !expected1.ok() ||
      !served1.value().summary.ExactlyEquals(expected1.value().summary)) {
    std::printf("epoch-1 answer diverges from the built counterpart\n");
    return 1;
  }
  std::printf("epoch %llu (model %016llx) serves mean %.1f s\n",
              static_cast<unsigned long long>(served1.value().epoch),
              static_cast<unsigned long long>(served1.value().model_fingerprint),
              served1.value().summary.mean);

  // 3. A corrupt refresh is rejected; the old epoch keeps serving. The
  //    corruption hits the header checksum: an artifact whose header still
  //    matches the served model would short-circuit to a no-op instead of
  //    exercising the load-and-validate path.
  const std::string bad_artifact = artifact + ".bad";
  {
    std::ifstream in(artifact, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes[16] ^= 0x5a;  // PCDEWF1 header checksum field
    std::ofstream out(bad_artifact, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const ScopedFileRemover bad_cleanup(bad_artifact);
  auto bad_swap = engine.Swap(bad_artifact);
  if (bad_swap.ok() || engine.epoch_sequence() != 1) {
    std::printf("corrupt artifact was not rejected cleanly\n");
    return 1;
  }
  auto after_reject = engine.Estimate(request);
  if (!after_reject.ok() ||
      !after_reject.value().summary.ExactlyEquals(served1.value().summary)) {
    std::printf("serving changed after a rejected swap\n");
    return 1;
  }
  std::printf("corrupt refresh rejected (%s); epoch 1 still serving\n",
              bad_swap.status().ToString().c_str());

  // 4. Delta rebuild in process: re-hydrate the served model, fold batch
  //    2, freeze generation 2. The result must be fingerprint-identical to
  //    the sequential full build (both batches into one fresh builder) —
  //    the refresh loses nothing relative to rebuilding from scratch.
  watch.Restart();
  core::WeightFunctionBuilder delta =
      core::WeightFunctionBuilder::FromFrozen(engine.model());
  if (!core::InstantiateIntoBuilder(*city.graph, batch2, params, &delta)
           .ok()) {
    std::printf("delta instantiation failed\n");
    return 1;
  }
  auto frozen2 = std::move(delta).TryFreeze();
  if (!frozen2.ok()) {
    std::printf("delta freeze failed: %s (epoch 1 keeps serving)\n",
                frozen2.status().ToString().c_str());
    return 1;
  }
  core::PathWeightFunction generation2 = std::move(frozen2).value();
  core::WeightFunctionBuilder fresh{core::TimeBinning(params.alpha_minutes)};
  if (!core::InstantiateIntoBuilder(*city.graph, batch1, params, &fresh).ok() ||
      !core::InstantiateIntoBuilder(*city.graph, batch2, params, &fresh).ok()) {
    std::printf("sequential full build failed\n");
    return 1;
  }
  auto frozen_seq = std::move(fresh).TryFreeze();
  if (!frozen_seq.ok()) {
    std::printf("sequential freeze failed: %s\n",
                frozen_seq.status().ToString().c_str());
    return 1;
  }
  core::PathWeightFunction sequential = std::move(frozen_seq).value();
  if (generation2.fingerprint() != sequential.fingerprint() ||
      generation2.fingerprint() == generation1.fingerprint()) {
    std::printf("delta rebuild diverges from the sequential full build\n");
    return 1;
  }
  std::printf("generation 2: %zu variables (model %016llx) delta-rebuilt "
              "in %.1f s, fingerprint-identical to the full rebuild\n",
              generation2.NumVariables(),
              static_cast<unsigned long long>(generation2.fingerprint()),
              watch.ElapsedSeconds());

  // 5. Publish generation 2 without touching disk, then serve from it. The
  //    exact-counterpart gate repeats against an engine adopting the
  //    sequential build.
  watch.Restart();
  auto swapped = engine.Swap(std::move(generation2));
  const double swap_s = watch.ElapsedSeconds();
  if (!swapped.ok() || swapped.value() != 2) {
    std::printf("swap failed: %s\n", swapped.status().ToString().c_str());
    return 1;
  }
  auto counterpart2 = adopt(std::move(sequential));
  if (counterpart2 == nullptr) return 1;
  auto served2 = engine.Estimate(request);
  auto expected2 = counterpart2->Estimate(request);
  if (!served2.ok() || !expected2.ok() ||
      !served2.value().summary.ExactlyEquals(expected2.value().summary)) {
    std::printf("epoch-2 answer diverges from the built counterpart\n");
    return 1;
  }
  if (served2.value().epoch != 2 ||
      served2.value().model_fingerprint == served1.value().model_fingerprint) {
    std::printf("epoch-2 provenance stamps are wrong\n");
    return 1;
  }
  std::printf("swapped to epoch %llu (model %016llx) in %.1f ms; "
              "serves mean %.1f s\n",
              static_cast<unsigned long long>(served2.value().epoch),
              static_cast<unsigned long long>(served2.value().model_fingerprint),
              swap_s * 1e3, served2.value().summary.mean);
  return 0;
}
