// Quickstart: build a synthetic city with trajectories, instantiate the
// hybrid graph's path weight function, and query the travel-time
// distribution of a path at a departure time.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "baselines/methods.h"
#include "common/table_writer.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;

  // 1. A city with simulated traffic and 4000 trips (substitute your own
  //    road network + map-matched trajectories here).
  std::printf("Generating city A with 4000 trips...\n");
  traj::Dataset city = traj::MakeDatasetA(4000);
  traj::TrajectoryStore store(city.MatchedSlice(1.0));

  // 2. Instantiate the path weight function W_P (Sec. 3 of the paper):
  //    joint travel-cost distributions for all paths with >= beta
  //    qualified trajectories per 30-minute interval, plus speed-limit
  //    fallbacks for unit paths.
  core::HybridParams params;       // alpha = 30 min, beta = 30 (Table 2)
  params.beta = 15;                // small dataset -> lower threshold
  core::InstantiationStats stats;
  const core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params, &stats);
  std::printf("Instantiated %zu variables in %.2f s "
              "(%zu unit from data, %zu joint, %zu speed-limit fallbacks)\n",
              wp.NumVariables(), stats.build_seconds,
              stats.unit_from_trajectories, stats.joint_variables,
              stats.unit_from_speed_limit);

  // 3. Pick a query path: a 6-edge window of a real trip on a data-rich
  //    corridor (so the decomposition gets to use joint variables).
  core::HybridEstimator od_probe = baselines::MakeOd(wp);
  roadnet::Path query;
  double departure = 0.0;
  for (const auto& trip : city.trips) {
    if (trip.truth.path.size() < 6) continue;
    for (size_t start = 0; start + 6 <= trip.truth.path.size(); ++start) {
      const roadnet::Path window = trip.truth.path.Slice(start, 6);
      const double entry = trip.truth.edge_enter_times[start];
      auto probe = od_probe.Decompose(window, entry);
      if (!probe.ok()) continue;
      size_t max_rank = 0;
      for (const auto& part : probe.value()) {
        max_rank = std::max(max_rank, part.rank());
      }
      if (max_rank >= 3) {
        query = window;
        departure = entry;
        break;
      }
    }
    if (!query.empty()) break;
  }
  if (query.empty()) {
    std::printf("no data-rich query window found\n");
    return 1;
  }
  std::printf("\nQuery: path %s departing at %.0f s (%02d:%02d)\n",
              query.ToString().c_str(), departure,
              static_cast<int>(departure / 3600),
              static_cast<int>(departure / 60) % 60);

  // 4. Estimate the cost distribution with the paper's OD method.
  core::HybridEstimator od = baselines::MakeOd(wp);
  auto de = od.Decompose(query, departure);
  if (de.ok()) {
    std::printf("Coarsest decomposition (%zu parts):", de.value().size());
    for (const auto& part : de.value()) {
      std::printf(" %s", part.variable->path.ToString().c_str());
    }
    std::printf("\n");
  }
  auto dist = od.EstimateCostDistribution(query, departure);
  if (!dist.ok()) {
    std::printf("estimation failed: %s\n", dist.status().ToString().c_str());
    return 1;
  }
  TableWriter table({"travel time (s)", "probability"});
  for (const auto& b : dist.value().buckets()) {
    table.AddRow({"[" + TableWriter::Num(b.range.lo, 0) + "," +
                      TableWriter::Num(b.range.hi, 0) + ")",
                  TableWriter::Num(b.prob, 4)});
  }
  table.Print();
  std::printf("mean %.1f s,  P(arrive within 2 min) = %.3f,  "
              "95th percentile %.1f s\n",
              dist.value().Mean(), dist.value().ProbWithin(120.0),
              dist.value().Quantile(0.95));

  // 5. Compare against the legacy edge-convolution baseline.
  auto lb = baselines::MakeLb(wp).EstimateCostDistribution(query, departure);
  if (lb.ok()) {
    std::printf("\nLegacy baseline (LB) mean %.1f s over %zu buckets; "
                "KL(OD, LB) = %.3f\n",
                lb.value().Mean(), lb.value().NumBuckets(),
                hist::KlDivergence(dist.value(), lb.value()));
  }
  return 0;
}
