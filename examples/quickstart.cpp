// Quickstart: build a synthetic city with trajectories, instantiate the
// hybrid graph's path weight function (offline), persist it as a binary
// model artifact, and serve travel-time queries from the reloaded artifact
// through the serving Engine (src/serving/engine.h) — the online query
// server in five lines of wiring.
//
//   cmake -B build && cmake --build build
//   ./build/example_quickstart
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/scoped_file.h"
#include "common/table_writer.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;

  // 1. A city with simulated traffic and 4000 trips (substitute your own
  //    road network + map-matched trajectories here).
  std::printf("Generating city A with 4000 trips...\n");
  traj::Dataset city = traj::MakeDatasetA(4000);
  traj::TrajectoryStore store(city.MatchedSlice(1.0));

  // 2. Offline: instantiate the path weight function W_P (Sec. 3 of the
  //    paper) and persist the frozen model.
  core::HybridParams params;       // alpha = 30 min, beta = 30 (Table 2)
  params.beta = 15;                // small dataset -> lower threshold
  core::InstantiationStats stats;
  core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params, &stats);
  std::printf("Instantiated %zu variables in %.2f s "
              "(%zu unit from data, %zu joint, %zu speed-limit fallbacks)\n",
              wp.NumVariables(), stats.build_seconds,
              stats.unit_from_trajectories, stats.joint_variables,
              stats.unit_from_speed_limit);
  const std::string artifact = MakeTempArtifactPath("pcde_quickstart");
  if (auto s = core::SaveWeightFunctionBinary(wp, artifact); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const ScopedFileRemover cleanup(artifact);

  // 3. Online: one Engine::Open wires the whole serving stack — model
  //    load, shared thread pool, sized query cache — from the artifact.
  serving::EngineOptions options;
  options.model_path = artifact;
  options.graph = city.graph.get();
  options.query_cache_bytes = size_t{16} << 20;
  auto opened = serving::Engine::Open(options);
  if (!opened.ok()) {
    std::printf("Engine::Open failed: %s\n",
                opened.status().ToString().c_str());
    return 1;
  }
  const serving::Engine& engine = *opened.value();
  std::printf("Engine serving %zu-variable model %016llx (%.2f MB artifact)\n",
              engine.model().NumVariables(),
              static_cast<unsigned long long>(engine.model().fingerprint()),
              static_cast<double>(std::filesystem::file_size(artifact)) /
                  (1024.0 * 1024.0));

  // 4. Pick a query: a 6-edge window of a real trip whose decomposition is
  //    coarse (fewer parts than edges = joint variables in play). The
  //    response breakdown carries the part count, so the probe itself runs
  //    on the serving API.
  serving::EstimateRequest request;
  request.budget_seconds = 120.0;
  request.quantiles = {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99};
  request.want_breakdown = true;
  bool found = false;
  for (const auto& trip : city.trips) {
    if (trip.truth.path.size() < 6) continue;
    for (size_t start = 0; start + 6 <= trip.truth.path.size(); ++start) {
      serving::EstimateRequest probe = request;
      probe.path = serving::PathSpec::ExplicitPath(
          trip.truth.path.Slice(start, 6));
      probe.departure_time = trip.truth.edge_enter_times[start];
      auto response = engine.Estimate(probe);
      if (response.ok() && response.value().breakdown.parts <= 3) {
        request = probe;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) {
    std::printf("no data-rich query window found\n");
    return 1;
  }

  // 5. Serve it. The summary carries everything user-facing: mean,
  //    variance, support, quantiles, P(arrive within budget).
  auto response = engine.Estimate(request);
  if (!response.ok()) {
    std::printf("estimation failed: %s\n",
                response.status().ToString().c_str());
    return 1;
  }
  const serving::CostSummary& summary = response.value().summary;
  const double departure = request.departure_time;
  std::printf("\nQuery: path %s departing at %.0f s (%02d:%02d), "
              "%zu-part decomposition\n",
              response.value().resolved_path.ToString().c_str(), departure,
              static_cast<int>(departure / 3600),
              static_cast<int>(departure / 60) % 60,
              response.value().breakdown.parts);
  TableWriter table({"quantile", "travel time (s)"});
  for (size_t i = 0; i < request.quantiles.size(); ++i) {
    table.AddRow({"p" + TableWriter::Num(100.0 * request.quantiles[i], 0),
                  TableWriter::Num(summary.quantiles[i], 1)});
  }
  table.Print();
  std::printf("mean %.1f s (stddev %.1f), support [%.1f, %.1f), "
              "P(arrive within 2 min) = %.3f over %zu buckets\n",
              summary.mean, std::sqrt(summary.variance), summary.support_lo,
              summary.support_hi, summary.prob_within_budget,
              summary.num_buckets);

  // 6. The round-trip gate: an Engine adopting the just-built model must
  //    serve the exact same numbers as the one serving the artifact.
  serving::EngineOptions built_options;
  built_options.graph = city.graph.get();
  auto built = serving::Engine::Open(std::move(wp), built_options);
  if (!built.ok()) {
    std::printf("adopting Engine::Open failed: %s\n",
                built.status().ToString().c_str());
    return 1;
  }
  auto built_response = built.value()->Estimate(request);
  if (!built_response.ok() ||
      !built_response.value().summary.ExactlyEquals(summary)) {
    std::printf("reloaded estimate diverges from built model\n");
    return 1;
  }
  std::printf("\nreloaded-artifact serving matches the built model "
              "exactly\n");

  // 7. Compare against the legacy edge-convolution baseline (LB): same
  //    artifact, unit-decomposition policy.
  serving::EngineOptions lb_options = options;
  lb_options.estimate.policy = core::DecompositionPolicy::kUnit;
  lb_options.estimate.rank_cap = 1;
  auto lb = serving::Engine::Open(std::move(lb_options));
  if (lb.ok()) {
    auto lb_response = lb.value()->Estimate(request);
    if (lb_response.ok()) {
      const serving::CostSummary& lb_summary = lb_response.value().summary;
      std::printf("\nLegacy baseline (LB): mean %.1f s vs %.1f s, "
                  "P(within 2 min) %.3f vs %.3f — independence misses the "
                  "edge correlations\n",
                  lb_summary.mean, summary.mean,
                  lb_summary.prob_within_budget,
                  summary.prob_within_budget);
    }
  }
  return 0;
}
