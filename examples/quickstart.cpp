// Quickstart: build a synthetic city with trajectories, instantiate the
// hybrid graph's path weight function (offline), persist it as a binary
// model artifact, reload it the way a query server would (online), and
// query the travel-time distribution of a path at a departure time.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "baselines/methods.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;

  // 1. A city with simulated traffic and 4000 trips (substitute your own
  //    road network + map-matched trajectories here).
  std::printf("Generating city A with 4000 trips...\n");
  traj::Dataset city = traj::MakeDatasetA(4000);
  traj::TrajectoryStore store(city.MatchedSlice(1.0));

  // 2. Offline: instantiate the path weight function W_P (Sec. 3 of the
  //    paper): joint travel-cost distributions for all paths with >= beta
  //    qualified trajectories per 30-minute interval, plus speed-limit
  //    fallbacks for unit paths. Instantiation freezes the model into its
  //    flat serving representation.
  core::HybridParams params;       // alpha = 30 min, beta = 30 (Table 2)
  params.beta = 15;                // small dataset -> lower threshold
  core::InstantiationStats stats;
  const core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params, &stats);
  std::printf("Instantiated %zu variables in %.2f s "
              "(%zu unit from data, %zu joint, %zu speed-limit fallbacks)\n",
              wp.NumVariables(), stats.build_seconds,
              stats.unit_from_trajectories, stats.joint_variables,
              stats.unit_from_speed_limit);

  // 3. Persist the frozen model and reload it — the offline-build /
  //    online-serve split. Everything below queries the *reloaded* model.
  const std::string artifact =
      (std::filesystem::temp_directory_path() /
       ("pcde_quickstart." + std::to_string(::getpid()) + ".pcdewf"))
          .string();
  Stopwatch io_watch;
  if (auto s = core::SaveWeightFunctionBinary(wp, artifact); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double save_s = io_watch.ElapsedSeconds();
  io_watch.Restart();
  auto loaded = core::LoadWeightFunction(artifact);
  const double load_s = io_watch.ElapsedSeconds();
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Saved binary artifact (%.2f MB) in %.0f ms; reloaded in "
              "%.1f ms; fingerprint %016llx\n",
              static_cast<double>(std::filesystem::file_size(artifact)) /
                  (1024.0 * 1024.0),
              save_s * 1e3, load_s * 1e3,
              static_cast<unsigned long long>(loaded.value().fingerprint()));
  if (loaded.value().fingerprint() != wp.fingerprint()) {
    std::printf("FINGERPRINT MISMATCH after reload\n");
    return 1;
  }
  const core::PathWeightFunction& served = loaded.value();

  // 4. Pick a query path: a 6-edge window of a real trip on a data-rich
  //    corridor (so the decomposition gets to use joint variables).
  core::HybridEstimator od_probe = baselines::MakeOd(served);
  roadnet::Path query;
  double departure = 0.0;
  for (const auto& trip : city.trips) {
    if (trip.truth.path.size() < 6) continue;
    for (size_t start = 0; start + 6 <= trip.truth.path.size(); ++start) {
      const roadnet::Path window = trip.truth.path.Slice(start, 6);
      const double entry = trip.truth.edge_enter_times[start];
      auto probe = od_probe.Decompose(window, entry);
      if (!probe.ok()) continue;
      size_t max_rank = 0;
      for (const auto& part : probe.value()) {
        max_rank = std::max(max_rank, part.rank());
      }
      if (max_rank >= 3) {
        query = window;
        departure = entry;
        break;
      }
    }
    if (!query.empty()) break;
  }
  if (query.empty()) {
    std::printf("no data-rich query window found\n");
    return 1;
  }
  std::printf("\nQuery: path %s departing at %.0f s (%02d:%02d)\n",
              query.ToString().c_str(), departure,
              static_cast<int>(departure / 3600),
              static_cast<int>(departure / 60) % 60);

  // 5. Estimate the cost distribution with the paper's OD method — served
  //    from the reloaded artifact, and cross-checked byte-for-byte against
  //    the just-built model.
  core::HybridEstimator od = baselines::MakeOd(served);
  auto de = od.Decompose(query, departure);
  if (de.ok()) {
    std::printf("Coarsest decomposition (%zu parts):", de.value().size());
    for (const auto& part : de.value()) {
      std::printf(" %s", part.variable->path.ToString().c_str());
    }
    std::printf("\n");
  }
  auto dist = od.EstimateCostDistribution(query, departure);
  if (!dist.ok()) {
    std::printf("estimation failed: %s\n", dist.status().ToString().c_str());
    return 1;
  }
  auto built_dist =
      baselines::MakeOd(wp).EstimateCostDistribution(query, departure);
  if (!built_dist.ok() || !built_dist.value().BitIdentical(dist.value())) {
    std::printf("reloaded estimate diverges from built model\n");
    return 1;
  }
  TableWriter table({"travel time (s)", "probability"});
  for (const auto& b : dist.value().buckets()) {
    table.AddRow({"[" + TableWriter::Num(b.range.lo, 0) + "," +
                      TableWriter::Num(b.range.hi, 0) + ")",
                  TableWriter::Num(b.prob, 4)});
  }
  table.Print();
  std::printf("mean %.1f s,  P(arrive within 2 min) = %.3f,  "
              "95th percentile %.1f s\n",
              dist.value().Mean(), dist.value().ProbWithin(120.0),
              dist.value().Quantile(0.95));

  // 6. Compare against the legacy edge-convolution baseline.
  auto lb = baselines::MakeLb(served).EstimateCostDistribution(query,
                                                               departure);
  if (lb.ok()) {
    std::printf("\nLegacy baseline (LB) mean %.1f s over %zu buckets; "
                "KL(OD, LB) = %.3f\n",
                lb.value().Mean(), lb.value().NumBuckets(),
                hist::KlDivergence(dist.value(), lb.value()));
  }
  std::remove(artifact.c_str());
  return 0;
}
