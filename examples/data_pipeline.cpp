// The full data pipeline of the paper: raw GPS trajectories -> HMM map
// matching (Newson & Krumm) -> trajectory store -> hybrid-graph
// instantiation -> binary model artifact -> cost-distribution queries
// served from the reloaded artifact (the offline-build / online-serve
// split).
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "baselines/methods.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "mapmatch/hmm_matcher.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("GPS -> map matching -> W_P instantiation -> query\n\n");

  // 1. Raw GPS data (1 Hz, 5 m noise) over city A.
  Stopwatch watch;
  traj::Dataset city = traj::MakeDatasetA(1500, /*emit_gps=*/true);
  size_t records = 0;
  for (const auto& trip : city.trips) records += trip.gps.records.size();
  std::printf("generated %zu trips / %zu GPS records in %.1f s\n",
              city.trips.size(), records, watch.ElapsedSeconds());

  // 2. Map matching.
  watch.Restart();
  mapmatch::HmmMatcher matcher(*city.graph, mapmatch::MapMatchConfig());
  std::vector<traj::MatchedTrajectory> matched;
  size_t failed = 0;
  double recovery = 0.0;
  for (const auto& trip : city.trips) {
    if (trip.gps.records.size() < 3) continue;
    auto result = matcher.Match(trip.gps);
    if (!result.ok()) {
      ++failed;
      continue;
    }
    recovery += mapmatch::HmmMatcher::RouteRecovery(
        trip.truth.path, result.value().matched.path);
    matched.push_back(std::move(result.value().matched));
  }
  std::printf("matched %zu trips (%zu failed) in %.1f s; "
              "route recovery vs simulation truth: %.1f%%\n",
              matched.size(), failed, watch.ElapsedSeconds(),
              100.0 * recovery / static_cast<double>(matched.size()));

  // 3. Instantiation from the *matched* data (as the paper does).
  watch.Restart();
  traj::TrajectoryStore store(std::move(matched));
  core::HybridParams params;
  params.beta = 10;  // small demo dataset
  core::InstantiationStats stats;
  const core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params, &stats);
  std::printf("instantiated %zu data variables (+%zu fallbacks) in %.1f s\n\n",
              stats.unit_from_trajectories + stats.joint_variables,
              stats.unit_from_speed_limit, watch.ElapsedSeconds());

  TableWriter table({"rank", "#variables"});
  for (const auto& [rank, count] : wp.CountByRank(false)) {
    table.AddRow({std::to_string(rank), std::to_string(count)});
  }
  table.Print();

  // 4. Persist the frozen model and reload it as a query server would.
  const std::string artifact =
      (std::filesystem::temp_directory_path() /
       ("pcde_pipeline." + std::to_string(::getpid()) + ".pcdewf"))
          .string();
  watch.Restart();
  if (auto s = core::SaveWeightFunctionBinary(wp, artifact); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double save_s = watch.ElapsedSeconds();
  watch.Restart();
  auto loaded = core::LoadWeightFunction(artifact);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsaved %.2f MB artifact in %.0f ms, reloaded in %.1f ms "
              "(fingerprint %016llx)\n",
              static_cast<double>(std::filesystem::file_size(artifact)) /
                  (1024.0 * 1024.0),
              save_s * 1e3, watch.ElapsedSeconds() * 1e3,
              static_cast<unsigned long long>(loaded.value().fingerprint()));
  if (loaded.value().fingerprint() != wp.fingerprint()) {
    std::printf("FINGERPRINT MISMATCH after reload\n");
    return 1;
  }

  // 5. Query a trip's path through the *reloaded* estimator, compare with
  //    what the trip actually took, and cross-check the served estimate
  //    byte-for-byte against the just-built model.
  core::HybridEstimator od = baselines::MakeOd(loaded.value());
  core::HybridEstimator od_built = baselines::MakeOd(wp);
  bool checked = false;
  for (size_t i = 0; i < store.NumTrajectories(); ++i) {
    const auto& t = store.trajectory(i);
    if (t.path.size() < 5) continue;
    const roadnet::Path query = t.path.Slice(0, 5);
    auto dist = od.EstimateCostDistribution(query, t.DepartureTime());
    if (!dist.ok()) continue;
    auto built = od_built.EstimateCostDistribution(query, t.DepartureTime());
    if (!built.ok() || !built.value().BitIdentical(dist.value())) {
      std::printf("reloaded estimate diverges from built model\n");
      return 1;
    }
    double actual = 0.0;
    for (size_t d = 0; d < 5; ++d) actual += t.edge_travel_seconds[d];
    std::printf("\nexample query %s at t=%.0f s (served from artifact):\n"
                "  estimated mean %.1f s (90%% within %.1f s); this trip "
                "took %.1f s\n",
                query.ToString().c_str(), t.DepartureTime(),
                dist.value().Mean(), dist.value().Quantile(0.9), actual);
    checked = true;
    break;
  }
  std::remove(artifact.c_str());
  if (!checked) {
    // The divergence gate must not pass vacuously: if no query could be
    // served from the reloaded model, that is itself a failure.
    std::printf("no query could be cross-checked against the artifact\n");
    return 1;
  }
  return 0;
}
