// The full data pipeline of the paper: raw GPS trajectories -> HMM map
// matching (Newson & Krumm) -> trajectory store -> hybrid-graph
// instantiation -> binary model artifact -> queries served from the
// reloaded artifact through the serving Engine (the offline-build /
// online-serve split).
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/scoped_file.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "mapmatch/hmm_matcher.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("GPS -> map matching -> W_P instantiation -> Engine query\n\n");

  // 1. Raw GPS data (1 Hz, 5 m noise) over city A.
  Stopwatch watch;
  traj::Dataset city = traj::MakeDatasetA(1500, /*emit_gps=*/true);
  size_t records = 0;
  for (const auto& trip : city.trips) records += trip.gps.records.size();
  std::printf("generated %zu trips / %zu GPS records in %.1f s\n",
              city.trips.size(), records, watch.ElapsedSeconds());

  // 2. Map matching.
  watch.Restart();
  mapmatch::HmmMatcher matcher(*city.graph, mapmatch::MapMatchConfig());
  std::vector<traj::MatchedTrajectory> matched;
  size_t failed = 0;
  double recovery = 0.0;
  for (const auto& trip : city.trips) {
    if (trip.gps.records.size() < 3) continue;
    auto result = matcher.Match(trip.gps);
    if (!result.ok()) {
      ++failed;
      continue;
    }
    recovery += mapmatch::HmmMatcher::RouteRecovery(
        trip.truth.path, result.value().matched.path);
    matched.push_back(std::move(result.value().matched));
  }
  std::printf("matched %zu trips (%zu failed) in %.1f s; "
              "route recovery vs simulation truth: %.1f%%\n",
              matched.size(), failed, watch.ElapsedSeconds(),
              100.0 * recovery / static_cast<double>(matched.size()));

  // 3. Instantiation from the *matched* data (as the paper does).
  watch.Restart();
  traj::TrajectoryStore store(std::move(matched));
  core::HybridParams params;
  params.beta = 10;  // small demo dataset
  core::InstantiationStats stats;
  core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params, &stats);
  std::printf("instantiated %zu data variables (+%zu fallbacks) in %.1f s\n\n",
              stats.unit_from_trajectories + stats.joint_variables,
              stats.unit_from_speed_limit, watch.ElapsedSeconds());

  TableWriter table({"rank", "#variables"});
  for (const auto& [rank, count] : wp.CountByRank(false)) {
    table.AddRow({std::to_string(rank), std::to_string(count)});
  }
  table.Print();

  // 4. Persist the frozen model, then stand up the online server: the
  //    Engine reloads the artifact and owns estimator + cache + pool.
  const std::string artifact = MakeTempArtifactPath("pcde_pipeline");
  watch.Restart();
  if (auto s = core::SaveWeightFunctionBinary(wp, artifact); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const ScopedFileRemover cleanup(artifact);
  const double save_s = watch.ElapsedSeconds();
  watch.Restart();
  serving::EngineOptions options;
  options.model_path = artifact;
  options.graph = city.graph.get();
  auto opened = serving::Engine::Open(options);
  if (!opened.ok()) {
    std::printf("Engine::Open failed: %s\n",
                opened.status().ToString().c_str());
    return 1;
  }
  const serving::Engine& engine = *opened.value();
  std::printf("\nsaved %.2f MB artifact in %.0f ms, Engine opened it in "
              "%.1f ms (model %016llx)\n",
              static_cast<double>(std::filesystem::file_size(artifact)) /
                  (1024.0 * 1024.0),
              save_s * 1e3, watch.ElapsedSeconds() * 1e3,
              static_cast<unsigned long long>(engine.model().fingerprint()));
  if (engine.model().fingerprint() != wp.fingerprint()) {
    std::printf("FINGERPRINT MISMATCH after reload\n");
    return 1;
  }

  // 5. Serve a trip's path through the Engine, compare with what the trip
  //    actually took, and cross-check the served summary exactly against
  //    an Engine adopting the just-built model.
  serving::EngineOptions built_options;
  built_options.graph = city.graph.get();
  auto built = serving::Engine::Open(std::move(wp), built_options);
  if (!built.ok()) {
    std::printf("adopting Engine::Open failed: %s\n",
                built.status().ToString().c_str());
    return 1;
  }
  bool checked = false;
  for (size_t i = 0; i < store.NumTrajectories(); ++i) {
    const auto& t = store.trajectory(i);
    if (t.path.size() < 5) continue;
    serving::EstimateRequest request;
    request.path = serving::PathSpec::ExplicitPath(t.path.Slice(0, 5));
    request.departure_time = t.DepartureTime();
    auto response = engine.Estimate(request);
    if (!response.ok()) continue;
    auto from_built = built.value()->Estimate(request);
    if (!from_built.ok() || !from_built.value().summary.ExactlyEquals(
                                response.value().summary)) {
      std::printf("reloaded estimate diverges from built model\n");
      return 1;
    }
    double actual = 0.0;
    for (size_t d = 0; d < 5; ++d) actual += t.edge_travel_seconds[d];
    const serving::CostSummary& summary = response.value().summary;
    std::printf("\nexample query %s at t=%.0f s (served from artifact):\n"
                "  estimated mean %.1f s (90%% within %.1f s); this trip "
                "took %.1f s\n",
                response.value().resolved_path.ToString().c_str(),
                t.DepartureTime(), summary.mean, summary.quantiles[1],
                actual);
    checked = true;
    break;
  }
  if (!checked) {
    // The divergence gate must not pass vacuously: if no query could be
    // served from the reloaded model, that is itself a failure.
    std::printf("no query could be cross-checked against the artifact\n");
    return 1;
  }
  return 0;
}
