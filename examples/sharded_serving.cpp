// Sharded serving end to end: build one model from trajectories, compile
// it into two per-region shards plus a PCDEMF1 manifest with
// core::WriteModelShards, open the manifest through
// serving::ShardedEngine, and serve the same OD batch through the sharded
// front door and a monolithic Engine side by side. Requests whose resolved
// path stays inside one shard must answer bit-identically to the
// monolithic engine (CostSummary::ExactlyEquals) and carry the manifest
// fingerprint; requests that cross the shard boundary are stitched
// per-segment and must stay within the documented tolerance of the
// monolithic mean while reporting honest provenance (degradation >=
// kSubpath, covered_fraction in (0, 1]). The per-shard resident footprint
// must come in strictly below the monolithic model. Any divergence exits
// nonzero, so this example doubles as a CI gate.
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/scoped_file.h"
#include "common/stopwatch.h"
#include "core/instantiation.h"
#include "core/shard_writer.h"
#include "serving/engine.h"
#include "serving/sharded_engine.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("sharded serving: build -> split -> open manifest -> serve\n\n");

  // 1. One model from one trajectory batch, exactly as a monolithic deploy
  //    would build it.
  traj::Dataset city = traj::MakeDatasetA(1200);
  const traj::TrajectoryStore store(city.MatchedSlice(1.0));
  core::HybridParams params;
  params.beta = 8;
  Stopwatch watch;
  core::WeightFunctionBuilder builder{core::TimeBinning(params.alpha_minutes)};
  if (!core::InstantiateIntoBuilder(*city.graph, store, params, &builder)
           .ok()) {
    std::printf("instantiation failed\n");
    return 1;
  }
  auto frozen = std::move(builder).TryFreeze();
  if (!frozen.ok()) {
    std::printf("freeze failed: %s\n", frozen.status().ToString().c_str());
    return 1;
  }
  core::PathWeightFunction model = std::move(frozen).value();
  std::printf("model: %zu variables (model %016llx) in %.1f s\n",
              model.NumVariables(),
              static_cast<unsigned long long>(model.fingerprint()),
              watch.ElapsedSeconds());

  // 2. Compile the model into two shards plus a manifest. Shard files are
  //    flat siblings of the manifest; every write is atomic + durable, the
  //    manifest last, so a crash mid-split never publishes a torn set.
  const std::string manifest_path =
      MakeTempArtifactPath("pcde_sharded_example", ".pcdemf");
  core::ShardWriteOptions split_options;
  split_options.num_shards = 2;
  split_options.file_prefix =
      "pcde_sharded_example." + std::to_string(::getpid());
  watch.Restart();
  auto split = core::WriteModelShards(model, manifest_path, split_options);
  if (!split.ok()) {
    std::printf("shard split failed: %s\n",
                split.status().ToString().c_str());
    return 1;
  }
  const core::ShardManifest manifest = std::move(split).value();
  const ScopedFileRemover manifest_cleanup(manifest_path);
  const std::string shard_dir =
      std::filesystem::path(manifest_path).parent_path().string();
  std::vector<std::unique_ptr<ScopedFileRemover>> shard_cleanup;
  std::printf("split into %zu shards (manifest %016llx) in %.1f ms:\n",
              manifest.shards.size(),
              static_cast<unsigned long long>(manifest.fingerprint),
              watch.ElapsedSeconds() * 1e3);
  for (const core::ShardInfo& shard : manifest.shards) {
    shard_cleanup.push_back(std::make_unique<ScopedFileRemover>(
        shard_dir + "/" + shard.file));
    std::printf("  keys [%llu, %llu]  %6.2f MB  %s\n",
                static_cast<unsigned long long>(shard.key_lo),
                static_cast<unsigned long long>(shard.key_hi),
                static_cast<double>(shard.bytes) / (1024.0 * 1024.0),
                shard.file.c_str());
  }

  // 3. The sharded front door opens the manifest (shards attach lazily on
  //    first touch); the monolithic reference adopts the same model.
  serving::ShardedEngineOptions sharded_options;
  sharded_options.engine.graph = city.graph.get();
  auto opened = serving::ShardedEngine::Open(manifest_path, sharded_options);
  if (!opened.ok()) {
    std::printf("ShardedEngine::Open failed: %s\n",
                opened.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<serving::ShardedEngine> sharded =
      std::move(opened).value();
  serving::EngineOptions mono_options;
  mono_options.graph = city.graph.get();
  auto mono_opened = serving::Engine::Open(std::move(model), mono_options);
  if (!mono_opened.ok()) {
    std::printf("monolithic Engine::Open failed: %s\n",
                mono_opened.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<serving::Engine> mono = std::move(mono_opened).value();

  // 4. One OD batch through both engines. Requests are classified by where
  //    their resolved path falls relative to the shard boundary; both
  //    classes must occur or the comparison proves nothing.
  const double depart = 8 * 3600.0;
  size_t in_shard = 0, cross_shard = 0;
  for (size_t v = 0; v + 41 < city.graph->NumVertices(); v += 7) {
    for (const size_t span : {size_t{17}, size_t{41}}) {
      serving::EstimateRequest request;
      request.path = serving::PathSpec::OdPair(
          static_cast<roadnet::VertexId>(v),
          static_cast<roadnet::VertexId>(v + span));
      request.departure_time = depart;
      auto resolved = sharded->ResolvePath(request.path);
      if (!resolved.ok() || resolved.value().size() < 2) continue;
      const roadnet::Path& path = resolved.value();
      const size_t owner = manifest.ShardOf(path[0]);
      bool crosses = false;
      for (size_t i = 1; i < path.size(); ++i) {
        if (manifest.ShardOf(path[i]) != owner) crosses = true;
      }

      auto served = sharded->Estimate(request);
      auto expected = mono->Estimate(request);
      if (!served.ok() || !expected.ok()) {
        std::printf("estimate failed: sharded %s / mono %s\n",
                    served.status().ToString().c_str(),
                    expected.status().ToString().c_str());
        return 1;
      }
      const serving::EstimateResponse& got = served.value();
      const serving::EstimateResponse& want = expected.value();
      if (got.model_fingerprint != manifest.fingerprint) {
        std::printf("sharded response lost the manifest fingerprint\n");
        return 1;
      }
      if (!crosses) {
        // In-shard: the owning shard holds the exact candidate set the
        // monolithic model would use, so the answer is bit-identical.
        if (!got.summary.ExactlyEquals(want.summary)) {
          std::printf("in-shard OD %zu->%zu diverged from monolithic\n", v,
                      v + span);
          return 1;
        }
        ++in_shard;
      } else {
        // Cross-shard: stitched per segment — honest provenance plus a
        // mean within the documented tolerance of the monolithic answer.
        if (got.summary.degradation < core::DegradationLevel::kSubpath ||
            got.summary.covered_fraction <= 0.0 ||
            got.summary.covered_fraction > 1.0) {
          std::printf("cross-shard OD %zu->%zu has dishonest provenance\n", v,
                      v + span);
          return 1;
        }
        const double tolerance = 0.25 * std::abs(want.summary.mean) + 1.0;
        if (std::abs(got.summary.mean - want.summary.mean) > tolerance) {
          std::printf(
              "cross-shard OD %zu->%zu mean %.1f s is outside the stitch "
              "tolerance of monolithic %.1f s\n",
              v, v + span, got.summary.mean, want.summary.mean);
          return 1;
        }
        ++cross_shard;
      }
    }
  }
  if (in_shard == 0 || cross_shard == 0) {
    std::printf("batch did not exercise both classes (%zu in-shard, %zu "
                "cross-shard)\n",
                in_shard, cross_shard);
    return 1;
  }
  const serving::EngineStats stats = sharded->stats();
  std::printf(
      "served %zu in-shard ODs bit-identically and %zu cross-shard ODs "
      "within tolerance (%llu cross-shard requests, %llu shard attaches)\n",
      in_shard, cross_shard,
      static_cast<unsigned long long>(stats.cross_shard_requests),
      static_cast<unsigned long long>(stats.shard_attaches));

  // 5. The point of sharding: no single process ever holds the whole
  //    model. The largest resident shard must undercut the monolithic
  //    footprint strictly.
  const size_t max_shard = sharded->MaxShardResidentBytes();
  const size_t mono_bytes = mono->model().ResidentBytes();
  if (sharded->resident_shards() < sharded->num_shards() ||
      max_shard >= mono_bytes) {
    std::printf("footprint gate failed: max shard %zu B vs monolithic %zu B "
                "(%zu/%zu shards resident)\n",
                max_shard, mono_bytes, sharded->resident_shards(),
                sharded->num_shards());
    return 1;
  }
  std::printf("footprint: max resident shard %.2f MB vs monolithic %.2f MB\n",
              static_cast<double>(max_shard) / (1024.0 * 1024.0),
              static_cast<double>(mono_bytes) / (1024.0 * 1024.0));
  return 0;
}
