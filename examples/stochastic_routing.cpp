// Stochastic budget routing (Sec. 4.3): find the path that maximizes the
// probability of arriving within a travel-time budget, with the hybrid
// graph (OD) and the legacy baseline (LB) as the cost estimator — the
// integration the paper's Fig. 18 measures.
#include <cstdio>

#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "core/instantiation.h"
#include "roadnet/shortest_path.h"
#include "routing/stochastic_router.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("Stochastic budget routing with the hybrid graph\n\n");
  traj::Dataset city = traj::MakeDatasetA(8000);
  traj::TrajectoryStore store(city.MatchedSlice(1.0));
  core::HybridParams params;
  params.beta = 15;
  const core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params);
  const roadnet::Graph& g = *city.graph;

  // A cross-town query during the morning rush.
  const roadnet::VertexId from = 5;
  const roadnet::VertexId to =
      static_cast<roadnet::VertexId>(g.NumVertices() / 2 + 9);
  const double min_time =
      roadnet::ShortestPathCost(g, from, to, roadnet::FreeFlowWeight(g));
  if (min_time == roadnet::kInfCost) {
    std::printf("unreachable pair\n");
    return 1;
  }
  const double budget = min_time * 1.2;
  const double departure = traj::HoursToSeconds(8.0);
  std::printf("from v%u to v%u, depart 08:00, free-flow minimum %.0f s, "
              "budget %.0f s\n\n",
              from, to, min_time, budget);

  TableWriter table({"estimator", "P(on time)", "|path|", "expansions",
                     "candidates", "time (ms)"});
  for (auto [name, policy, cap] :
       {std::tuple<const char*, core::DecompositionPolicy, size_t>{
            "OD-DFS", core::DecompositionPolicy::kCoarsest, 0},
        {"HP-DFS", core::DecompositionPolicy::kPairwise, 2},
        {"LB-DFS", core::DecompositionPolicy::kUnit, 1}}) {
    core::EstimateOptions options;
    options.policy = policy;
    options.rank_cap = cap;
    routing::RouterConfig config;
    config.max_expansions = 100000;
    routing::DfsStochasticRouter router(g, wp, options, config);
    Stopwatch watch;
    auto result = router.Route(from, to, departure, budget);
    const double ms = watch.ElapsedMillis();
    if (!result.ok()) {
      table.AddRow({name, "-", "-", "-", "-", TableWriter::Num(ms, 1)});
      continue;
    }
    table.AddRow({name, TableWriter::Num(result.value().best_probability, 4),
                  std::to_string(result.value().best_path.size()),
                  std::to_string(result.value().expansions),
                  std::to_string(result.value().candidate_paths),
                  TableWriter::Num(ms, 1)});
  }
  table.Print();
  std::printf("\nThe same DFS algorithm runs with each estimator plugged\n"
              "in; the hybrid graph both changes the probability estimates\n"
              "(dependence-aware) and accelerates the search.\n");
  return 0;
}
