// Stochastic budget routing (Sec. 4.3): find the path that maximizes the
// probability of arriving within a travel-time budget, with the hybrid
// graph (OD) and the legacy baseline (LB) as the cost estimator — the
// integration the paper's Fig. 18 measures, served through the Engine:
// one frozen artifact, one Engine per estimation policy, RouteRequest in,
// RouteResponse out.
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/scoped_file.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "roadnet/shortest_path.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("Stochastic budget routing with the hybrid graph\n\n");
  traj::Dataset city = traj::MakeDatasetA(8000);
  traj::TrajectoryStore store(city.MatchedSlice(1.0));
  core::HybridParams params;
  params.beta = 15;
  const core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params);
  const roadnet::Graph& g = *city.graph;

  // One frozen artifact; every routing engine below serves from it.
  const std::string artifact = MakeTempArtifactPath("pcde_routing");
  if (auto s = core::SaveWeightFunctionBinary(wp, artifact); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const ScopedFileRemover cleanup(artifact);

  // A cross-town query during the morning rush.
  serving::RouteRequest request;
  request.from = 5;
  request.to = static_cast<roadnet::VertexId>(g.NumVertices() / 2 + 9);
  const double min_time = roadnet::ShortestPathCost(
      g, request.from, request.to, roadnet::FreeFlowWeight(g));
  if (min_time == roadnet::kInfCost) {
    std::printf("unreachable pair\n");
    return 1;
  }
  request.budget_seconds = min_time * 1.2;
  request.departure_time = traj::HoursToSeconds(8.0);
  std::printf("from v%u to v%u, depart 08:00, free-flow minimum %.0f s, "
              "budget %.0f s\n\n",
              request.from, request.to, min_time, request.budget_seconds);

  TableWriter table({"estimator", "P(on time)", "|path|", "expansions",
                     "candidates", "time (ms)"});
  for (auto [name, policy, cap] :
       {std::tuple<const char*, core::DecompositionPolicy, size_t>{
            "OD-DFS", core::DecompositionPolicy::kCoarsest, 0},
        {"HP-DFS", core::DecompositionPolicy::kPairwise, 2},
        {"LB-DFS", core::DecompositionPolicy::kUnit, 1}}) {
    serving::EngineOptions options;
    options.model_path = artifact;
    options.graph = &g;
    options.estimate.policy = policy;
    options.estimate.rank_cap = cap;
    options.route_max_expansions = 100000;
    auto engine = serving::Engine::Open(std::move(options));
    if (!engine.ok()) {
      std::printf("Engine::Open failed: %s\n",
                  engine.status().ToString().c_str());
      return 1;
    }
    Stopwatch watch;
    auto response = engine.value()->Route(request);
    const double ms = watch.ElapsedMillis();
    if (!response.ok()) {
      table.AddRow({name, "-", "-", "-", "-", TableWriter::Num(ms, 1)});
      continue;
    }
    table.AddRow(
        {name, TableWriter::Num(response.value().on_time_probability, 4),
         std::to_string(response.value().best_path.size()),
         std::to_string(response.value().expansions),
         std::to_string(response.value().candidate_paths),
         TableWriter::Num(ms, 1)});
  }
  table.Print();
  std::printf("\nThe same DFS algorithm runs with each estimator plugged\n"
              "in; the hybrid graph both changes the probability estimates\n"
              "(dependence-aware) and accelerates the search.\n");
  return 0;
}
