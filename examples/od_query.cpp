// The OD-query scenario end to end: clients of a travel-time service know
// origin and destination vertices, not edge ids. An EstimateRequest with
// PathSpec::OdPair resolves the pair to the free-flow shortest path inside
// the Engine and serves its cost distribution — save -> reload -> serve,
// with an exact divergence gate against the just-built model (this example
// is part of the CI gate; any mismatch exits nonzero).
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/scoped_file.h"
#include "common/table_writer.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("OD-pair queries through the serving Engine\n\n");

  // Offline: build and persist the model.
  traj::Dataset city = traj::MakeDatasetA(4000);
  traj::TrajectoryStore store(city.MatchedSlice(1.0));
  core::HybridParams params;
  params.beta = 15;
  core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params);
  const roadnet::Graph& g = *city.graph;
  const std::string artifact = MakeTempArtifactPath("pcde_od_query");
  if (auto s = core::SaveWeightFunctionBinary(wp, artifact); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const ScopedFileRemover cleanup(artifact);

  // Online: the artifact-serving engine (what a query server runs) and an
  // engine adopting the built model (the divergence reference).
  serving::EngineOptions options;
  options.model_path = artifact;
  options.graph = &g;
  options.query_cache_bytes = size_t{16} << 20;
  auto opened = serving::Engine::Open(options);
  if (!opened.ok()) {
    std::printf("Engine::Open failed: %s\n",
                opened.status().ToString().c_str());
    return 1;
  }
  const serving::Engine& engine = *opened.value();
  serving::EngineOptions built_options;
  built_options.graph = &g;
  auto built = serving::Engine::Open(std::move(wp), built_options);
  if (!built.ok()) {
    std::printf("adopting Engine::Open failed: %s\n",
                built.status().ToString().c_str());
    return 1;
  }

  // A small OD workload: cross-town pairs at the morning rush, one batch.
  // The last request is deliberately malformed (from == to) — it fails
  // alone with its own Status, the batch itself always completes.
  const double departure = traj::HoursToSeconds(8.0);
  const roadnet::VertexId far_side =
      static_cast<roadnet::VertexId>(g.NumVertices() - 3);
  std::vector<serving::EstimateRequest> requests;
  for (auto [from, to] :
       {std::pair<roadnet::VertexId, roadnet::VertexId>{2, far_side},
        {5, static_cast<roadnet::VertexId>(g.NumVertices() / 2 + 9)},
        {0, static_cast<roadnet::VertexId>(g.NumVertices() - 1)},
        {7, 7}}) {
    serving::EstimateRequest request;
    request.path = serving::PathSpec::OdPair(from, to);
    request.departure_time = departure;
    request.budget_seconds = 15 * 60.0;  // "arrive within 15 minutes?"
    request.quantiles = {0.5, 0.9, 0.95};
    requests.push_back(request);
  }
  auto responses = engine.EstimateBatch(requests);

  TableWriter table({"OD pair", "|path|", "mean (s)", "p50", "p90", "p95",
                     "P(<=15 min)"});
  size_t served = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const auto od = "v" + std::to_string(requests[i].path.from) + " -> v" +
                    std::to_string(requests[i].path.to);
    if (!responses[i].ok()) {
      std::printf("%s failed: %s\n", od.c_str(),
                  responses[i].status().ToString().c_str());
      continue;
    }
    const serving::EstimateResponse& r = responses[i].value();
    table.AddRow({od, std::to_string(r.resolved_path.size()),
                  TableWriter::Num(r.summary.mean, 1),
                  TableWriter::Num(r.summary.quantiles[0], 1),
                  TableWriter::Num(r.summary.quantiles[1], 1),
                  TableWriter::Num(r.summary.quantiles[2], 1),
                  TableWriter::Num(r.summary.prob_within_budget, 4)});
    ++served;

    // Gate 1: the OD form must serve exactly what the explicit form of
    // its resolved path serves (resolution changes addressing, never the
    // estimate).
    serving::EstimateRequest explicit_request = requests[i];
    explicit_request.path =
        serving::PathSpec::ExplicitPath(r.resolved_path);
    auto explicit_response = engine.Estimate(explicit_request);
    if (!explicit_response.ok() ||
        !explicit_response.value().summary.ExactlyEquals(r.summary)) {
      std::printf("OD and explicit forms diverge on %s\n", od.c_str());
      return 1;
    }
    // Gate 2: serving from the reloaded artifact must match the built
    // model exactly.
    auto reference = built.value()->Estimate(requests[i]);
    if (!reference.ok() ||
        !reference.value().summary.ExactlyEquals(r.summary)) {
      std::printf("reloaded estimate diverges from built model on %s\n",
                  od.c_str());
      return 1;
    }
  }
  std::printf("\n");
  table.Print();
  if (served == 0) {
    std::printf("no OD pair could be served\n");
    return 1;
  }
  if (responses.back().ok()) {
    std::printf("malformed request unexpectedly succeeded\n");
    return 1;
  }
  std::printf("\n%zu OD pairs served from the reloaded artifact; OD vs "
              "explicit and reloaded vs built are exact matches\n", served);
  return 0;
}
