// The paper's Fig. 1(a) motivating scenario: a traveller must reach the
// airport within a deadline and chooses between candidate paths. The mean
// alone picks the wrong path; the distribution picks the right one.
//
// Two candidate paths between the same endpoints are compared by
// P(travel time <= deadline), computed with the hybrid-graph estimator.
#include <cstdio>
#include <set>

#include "baselines/methods.h"
#include "common/table_writer.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "roadnet/shortest_path.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("Fig. 1(a) scenario: which path reaches the 'airport' in "
              "time?\n\n");
  traj::Dataset city = traj::MakeDatasetA(8000);
  traj::TrajectoryStore store(city.MatchedSlice(1.0));
  core::HybridParams params;
  params.beta = 15;
  const core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params);
  const roadnet::Graph& g = *city.graph;

  // Origin/destination: a cross-town pair ("home" -> "airport").
  // Candidate 1: the fastest free-flow route. Candidate 2: an alternative
  // that avoids the first route's arterials (jittered weights).
  const roadnet::VertexId home = 2;
  const roadnet::VertexId airport =
      static_cast<roadnet::VertexId>(g.NumVertices() - 3);
  auto p1 = roadnet::ShortestPath(g, home, airport, roadnet::FreeFlowWeight(g));
  if (!p1.ok()) {
    std::printf("no route: %s\n", p1.status().ToString().c_str());
    return 1;
  }
  // Alternative: penalize P1's edges to force a different route.
  std::set<roadnet::EdgeId> p1_edges(p1.value().begin(), p1.value().end());
  const roadnet::EdgeWeightFn alt_weight = [&](const roadnet::Edge& e) {
    return e.FreeFlowSeconds() * (p1_edges.count(e.id) ? 2.5 : 1.0);
  };
  auto p2 = roadnet::ShortestPath(g, home, airport, alt_weight);
  if (!p2.ok()) {
    std::printf("no alternative route\n");
    return 1;
  }

  const double departure = traj::HoursToSeconds(8.0);  // morning rush
  core::HybridEstimator od = baselines::MakeOd(wp);
  auto d1 = od.EstimateCostDistribution(p1.value(), departure);
  auto d2 = od.EstimateCostDistribution(p2.value(), departure);
  if (!d1.ok() || !d2.ok()) {
    std::printf("estimation failed\n");
    return 1;
  }

  // Deadline between the two means so the decision is non-trivial.
  const double deadline =
      0.5 * (d1.value().Mean() + d2.value().Mean()) +
      2.0 * std::max(d1.value().Quantile(0.9) - d1.value().Mean(),
                     d2.value().Quantile(0.9) - d2.value().Mean());

  TableWriter table({"path", "|P|", "mean (s)", "90th pct (s)",
                     "P(on time)"});
  auto row = [&](const char* name, const roadnet::Path& p,
                 const hist::Histogram1D& d) {
    table.AddRow({name, std::to_string(p.size()),
                  TableWriter::Num(d.Mean(), 1),
                  TableWriter::Num(d.Quantile(0.9), 1),
                  TableWriter::Num(d.ProbWithin(deadline), 4)});
  };
  std::printf("Departure 08:00, deadline %.0f s (%.1f min):\n\n", deadline,
              deadline / 60.0);
  row("P1 (fastest nominal)", p1.value(), d1.value());
  row("P2 (alternative)", p2.value(), d2.value());
  table.Print();

  const double prob1 = d1.value().ProbWithin(deadline);
  const double prob2 = d2.value().ProbWithin(deadline);
  const bool mean_pick = d1.value().Mean() < d2.value().Mean();
  const bool prob_pick = prob1 > prob2;
  std::printf("\nBy mean travel time, choose %s; by on-time probability, "
              "choose %s.\n",
              mean_pick ? "P1" : "P2", prob_pick ? "P1" : "P2");
  if (mean_pick != prob_pick) {
    std::printf("The two criteria disagree — exactly the paper's Fig. 1(a) "
                "point:\nonly the distribution supports deadline-aware "
                "choices.\n");
  } else {
    std::printf("Here both criteria agree, but only the distribution\n"
                "quantifies the risk (P(on time) = %.3f vs %.3f).\n", prob1,
                prob2);
  }
  return 0;
}
