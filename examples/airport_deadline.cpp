// The paper's Fig. 1(a) motivating scenario: a traveller must reach the
// airport within a deadline and chooses between candidate paths. The mean
// alone picks the wrong path; the distribution picks the right one.
//
// Two candidate paths between the same endpoints are compared by
// P(travel time <= deadline), served as one Engine batch — each response
// carries its CostSummary (mean, quantiles, on-time probability).
#include <cstdio>
#include <set>

#include "common/table_writer.h"
#include "core/instantiation.h"
#include "roadnet/shortest_path.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

int main() {
  using namespace pcde;
  std::printf("Fig. 1(a) scenario: which path reaches the 'airport' in "
              "time?\n\n");
  traj::Dataset city = traj::MakeDatasetA(8000);
  traj::TrajectoryStore store(city.MatchedSlice(1.0));
  core::HybridParams params;
  params.beta = 15;
  core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*city.graph, store, params);
  const roadnet::Graph& g = *city.graph;

  // The online side: an Engine adopting the built model (embedded wiring —
  // no artifact needed for a demo).
  serving::EngineOptions options;
  options.graph = &g;
  auto opened = serving::Engine::Open(std::move(wp), options);
  if (!opened.ok()) {
    std::printf("Engine::Open failed: %s\n",
                opened.status().ToString().c_str());
    return 1;
  }
  const serving::Engine& engine = *opened.value();

  // Origin/destination: a cross-town pair ("home" -> "airport").
  // Candidate 1: the fastest free-flow route. Candidate 2: an alternative
  // that avoids the first route's arterials (jittered weights).
  const roadnet::VertexId home = 2;
  const roadnet::VertexId airport =
      static_cast<roadnet::VertexId>(g.NumVertices() - 3);
  auto p1 = roadnet::ShortestPath(g, home, airport, roadnet::FreeFlowWeight(g));
  if (!p1.ok()) {
    std::printf("no route: %s\n", p1.status().ToString().c_str());
    return 1;
  }
  // Alternative: penalize P1's edges to force a different route.
  std::set<roadnet::EdgeId> p1_edges(p1.value().begin(), p1.value().end());
  const roadnet::EdgeWeightFn alt_weight = [&](const roadnet::Edge& e) {
    return e.FreeFlowSeconds() * (p1_edges.count(e.id) ? 2.5 : 1.0);
  };
  auto p2 = roadnet::ShortestPath(g, home, airport, alt_weight);
  if (!p2.ok()) {
    std::printf("no alternative route\n");
    return 1;
  }

  // First round: distribution shape (mean + 90th percentile) of both
  // candidates, one batch on the engine's pool.
  const double departure = traj::HoursToSeconds(8.0);  // morning rush
  std::vector<serving::EstimateRequest> requests(2);
  requests[0].path = serving::PathSpec::ExplicitPath(p1.value());
  requests[1].path = serving::PathSpec::ExplicitPath(p2.value());
  for (auto& r : requests) {
    r.departure_time = departure;
    r.quantiles = {0.9};
  }
  auto shapes = engine.EstimateBatch(requests);
  if (!shapes[0].ok() || !shapes[1].ok()) {
    std::printf("estimation failed\n");
    return 1;
  }
  const serving::CostSummary& s1 = shapes[0].value().summary;
  const serving::CostSummary& s2 = shapes[1].value().summary;

  // Deadline between the two means so the decision is non-trivial; second
  // round asks the on-time question (the repeat is a cache hit).
  const double deadline =
      0.5 * (s1.mean + s2.mean) +
      2.0 * std::max(s1.quantiles[0] - s1.mean, s2.quantiles[0] - s2.mean);
  for (auto& r : requests) r.budget_seconds = deadline;
  auto judged = engine.EstimateBatch(requests);
  if (!judged[0].ok() || !judged[1].ok()) {
    std::printf("estimation failed\n");
    return 1;
  }
  const double prob1 = judged[0].value().summary.prob_within_budget;
  const double prob2 = judged[1].value().summary.prob_within_budget;

  TableWriter table({"path", "|P|", "mean (s)", "90th pct (s)",
                     "P(on time)"});
  auto row = [&](const char* name, const roadnet::Path& p,
                 const serving::CostSummary& s, double prob) {
    table.AddRow({name, std::to_string(p.size()), TableWriter::Num(s.mean, 1),
                  TableWriter::Num(s.quantiles[0], 1),
                  TableWriter::Num(prob, 4)});
  };
  std::printf("Departure 08:00, deadline %.0f s (%.1f min):\n\n", deadline,
              deadline / 60.0);
  row("P1 (fastest nominal)", p1.value(), s1, prob1);
  row("P2 (alternative)", p2.value(), s2, prob2);
  table.Print();

  const bool mean_pick = s1.mean < s2.mean;
  const bool prob_pick = prob1 > prob2;
  std::printf("\nBy mean travel time, choose %s; by on-time probability, "
              "choose %s.\n",
              mean_pick ? "P1" : "P2", prob_pick ? "P1" : "P2");
  if (mean_pick != prob_pick) {
    std::printf("The two criteria disagree — exactly the paper's Fig. 1(a) "
                "point:\nonly the distribution supports deadline-aware "
                "choices.\n");
  } else {
    std::printf("Here both criteria agree, but only the distribution\n"
                "quantifies the risk (P(on time) = %.3f vs %.3f).\n", prob1,
                prob2);
  }
  return 0;
}
