#!/usr/bin/env bash
# Builds Release and runs the chain-estimation perf benches, writing the
# BENCH_chain.json perf record at the repo root (schema: bench/README.md).
# The record carries the paired kernel series (chain_sweep vs the frozen
# reference), the Engine-served batch series estimate_batch_threads_{1,2,4,8}
# with per-query p50/p99 latencies plus the paired direct-wiring series
# estimate_batch_direct_threads_1 (engine_batch_vs_direct is the facade
# overhead gate), the cached batch series estimate_batch_cached_threads_4
# with its query-cache hit counts, the Engine::Route series
# route_dfs{,_prefix_reuse}, the sharded serving series
# sharded_estimate{,_mono,_cross} with the sharded_vs_mono routing-overhead
# ratio and per-shard resident footprint headlines, and the model series
# (offline build seconds, per-format save/load seconds and artifact bytes,
# resident model bytes, binary-vs-text load speedup).
#
# Usage: scripts/run_benches.sh [reps]
#   reps: measurement repetitions per decomposition for the chain
#         microbench (default 8).
#
# The efficiency figure harness (bench_fig16_efficiency) is also built and
# can be run manually; it takes minutes per method series, so this script
# only runs the targeted chain microbench by default. Set
# PCDE_RUN_FIG16=1 to run it too.
set -euo pipefail

cd "$(dirname "$0")/.."
REPS="${1:-8}"
BUILD_DIR=build-release

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_chain_micro bench_fig16_efficiency -j

"./$BUILD_DIR/bench_chain_micro" BENCH_chain.json "$REPS"

if [[ "${PCDE_RUN_FIG16:-0}" == "1" ]]; then
  "./$BUILD_DIR/bench_fig16_efficiency"
fi

echo "wrote $(pwd)/BENCH_chain.json"
