#!/usr/bin/env bash
# CI gate: builds and tests the tree in two configurations, then runs the
# chain perf record and fails if the kernel speedup regresses.
#
#   1. Debug + ASan, SIMD forced to the scalar fallback — the golden
#      equivalence tests cover the non-SIMD chain kernel under the
#      sanitizer (including prefix_state_cache_test, which proves routing
#      with prefix chain-state reuse bit-identical to routing without it,
#      and the BatchMetrics worker path exercised by batch_estimator_test).
#      The swap-stress gate then reruns the refresh fault-injection
#      harness's concurrency tests explicitly under ASan: concurrent
#      clients against an engine whose model is repeatedly swapped (with
#      corrupt-artifact attempts interleaved) must see zero failed and
#      zero cross-epoch-mixed responses, every fingerprint matching a
#      published epoch. The overload-chaos gate then reruns the ISSUE 7
#      storm under ASan: deadlines tripping mid-sweep, pre-cancelled
#      requests, admission shedding, and epoch swaps all at once must
#      produce zero hangs, zero mixed-epoch responses, and zero leaks.
#      The pruned-routing gate then reruns the routing pruning suite
#      explicitly under ASan: every pruner combination must match the
#      plain search's route quality exactly (routing/pruning.h).
#      The fault-sweep gate (ISSUE 9) then reruns the fault-injection
#      sweep explicitly under ASan: every registered fault site is armed
#      mechanically and driven through save -> swap -> serve (plus the
#      torn-write, probe-verification, rollback, and multi-fault-storm
#      tests) — injected open/write/fsync/rename/mmap failures must fail
#      with clean Statuses, leave prior artifacts byte-identical, drop no
#      temp files, and never corrupt or leak a served response.
#   2. Optional Debug + TSan build (skipped with a notice when the
#      toolchain can't produce one) running the thread pool, admission,
#      overload-chaos, routing-pruning, and fault-sweep suites — the
#      lock-order/data-race angle on the same cancellation and shedding
#      machinery plus the shared-incumbent / strided-budget atomics and
#      the armed-injector / retrying-swap paths.
#   3. Release with SIMD on — the production configuration.
#   4. End-to-end examples in Release, all served through serving::Engine:
#      quickstart, data_pipeline, and od_query each build -> save -> reload
#      a binary model artifact and serve from it via Engine::Open, exiting
#      nonzero if any served estimate diverges from the built model
#      (od_query additionally gates OD-pair resolution against the
#      explicit-path form); model_refresh walks the zero-downtime refresh
#      (build -> serve -> rejected corrupt swap -> delta rebuild -> swap ->
#      serve) with exact-counterpart assertions on both epochs;
#      sharded_serving splits one model into per-region shards plus a
#      PCDEMF1 manifest, opens it through serving::ShardedEngine, and
#      serves the same OD batch sharded vs monolithic — in-shard answers
#      must be bit-identical, cross-shard answers stitched within
#      tolerance with honest provenance, and the largest resident shard
#      strictly below the monolithic footprint.
#   5. scripts/run_benches.sh-equivalent perf record; fails the gate when
#      BENCH_chain.json reports speedup_vs_reference < PCDE_CI_MIN_SPEEDUP
#      (default 3), the binary model load is less than
#      PCDE_CI_MIN_LOAD_SPEEDUP (default 10) times faster than the text
#      parser, the routing-with-prefix-reuse series is missing, the
#      Engine-vs-direct batch ratio engine_batch_vs_direct is missing or
#      below PCDE_CI_MIN_ENGINE_RATIO (default 0.95 — the serving facade
#      may cost at most ~5% over direct HybridEstimator wiring), or — on
#      hosts with >= 8 CPUs, the only place an 8-worker speedup is
#      physically expressible — batch_scaling_8v1 drops below
#      PCDE_CI_MIN_BATCH_SCALING (default 3). The refresh/degradation
#      series (swap_publish, estimate_during_swap, fallback_subpath/_edge)
#      and the swap_publish_seconds headline must also be present: the
#      bench aborts internally on any swap failure, churned-batch error
#      response, or wrong degradation provenance, so presence certifies
#      those runtime gates passed. The overload series
#      (estimate_deadline_overshoot, overload_shed) must likewise be
#      present (the bench aborts if a deadline never trips, a deadline
#      unwind comes back with the wrong status, or the storm never
#      sheds), and the deadline_overshoot_p50_vs_estimate_p50 headline
#      must stay below PCDE_CI_MAX_OVERSHOOT_RATIO (default 0.5):
#      cooperative cancellation checkpoints at every chain-part
#      transition, so a tripped estimate may overrun its deadline by at
#      most a fraction of the unconstrained latency —
#      request-granularity cancellation would push the ratio toward 1.
#      The routing series must include the paired route_dfs_pruned run and
#      its route_speedup_pruned_vs_plain headline must be at least
#      PCDE_CI_MIN_ROUTE_SPEEDUP (default 3): the bench aborts internally
#      if any pruned route's on-time probability diverges from the plain
#      search's, so the headline certifies speedup at equal route quality.
#      The refresh series must also include swap_verified_publish and the
#      swap_verified_publish_seconds headline (Engine::Swap with K=8
#      golden probe queries verified against per-generation references —
#      the bench aborts on any probe divergence), and verification may
#      cost at most PCDE_CI_MAX_VERIFY_RATIO (default 2) times the plain
#      swap_publish_seconds. The sharded series (sharded_estimate,
#      sharded_estimate_mono, sharded_estimate_cross) must be present —
#      the bench aborts internally if any single-shard answer diverges
#      from the monolithic engine bit-for-bit, a cross-shard stitch
#      reports dishonest provenance, or the largest resident shard fails
#      to undercut the monolithic footprint — and the sharded_vs_mono
#      throughput ratio must stay at or above PCDE_CI_MIN_SHARDED_RATIO
#      (default 0.8): the shard-routing front door may cost at most ~20%
#      over serving the unsplit model directly.
#
# Usage: scripts/ci.sh [reps]
set -euo pipefail

cd "$(dirname "$0")/.."
REPS="${1:-8}"
MIN_SPEEDUP="${PCDE_CI_MIN_SPEEDUP:-3}"
MIN_LOAD_SPEEDUP="${PCDE_CI_MIN_LOAD_SPEEDUP:-10}"
MIN_BATCH_SCALING="${PCDE_CI_MIN_BATCH_SCALING:-3}"
MIN_ENGINE_RATIO="${PCDE_CI_MIN_ENGINE_RATIO:-0.95}"
MAX_OVERSHOOT_RATIO="${PCDE_CI_MAX_OVERSHOOT_RATIO:-0.5}"
MIN_ROUTE_SPEEDUP="${PCDE_CI_MIN_ROUTE_SPEEDUP:-3}"
MAX_VERIFY_RATIO="${PCDE_CI_MAX_VERIFY_RATIO:-2}"
MIN_SHARDED_RATIO="${PCDE_CI_MIN_SHARDED_RATIO:-0.8}"

echo "=== [1/5] Debug + ASan build (scalar SIMD fallback) ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DPCDE_SANITIZE=address \
      -DPCDE_SIMD=OFF -DPCDE_BUILD_BENCHES=OFF -DPCDE_BUILD_EXAMPLES=OFF
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j)

echo "=== [1/5] Swap-stress gate (refresh fault injection under ASan) ==="
./build-asan/refresh_fault_test \
  --gtest_filter='RefreshFaultTest.SwapUnderConcurrentLoadNeverMixesEpochs:RefreshFaultTest.SwapRejectsCorruptArtifactsAndKeepsServing'

echo "=== [1/5] Overload-chaos gate (deadlines + cancel + shed + swaps under ASan) ==="
./build-asan/overload_chaos_test

echo "=== [1/5] Pruned-routing gate (pruner quality parity under ASan) ==="
./build-asan/routing_pruning_test

echo "=== [1/5] Fault-sweep gate (per-site durability fault injection under ASan) ==="
./build-asan/fault_sweep_test

echo "=== [2/5] Optional Debug + TSan build (thread pool, admission, chaos) ==="
# Not every toolchain in the build matrix ships a working TSan runtime
# (some libc/arch combinations can't even link it), so this step probes
# first and skips with a notice instead of failing the gate.
if cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DPCDE_SANITIZE=thread \
        -DPCDE_SIMD=OFF -DPCDE_BUILD_BENCHES=OFF -DPCDE_BUILD_EXAMPLES=OFF \
        > build-tsan-configure.log 2>&1 \
   && cmake --build build-tsan -j --target thread_pool_test admission_test \
        overload_chaos_test routing_pruning_test fault_sweep_test \
        > build-tsan-build.log 2>&1 \
   && ./build-tsan/thread_pool_test --gtest_brief=1 > /dev/null 2>&1; then
  ./build-tsan/thread_pool_test
  ./build-tsan/admission_test
  ./build-tsan/overload_chaos_test
  ./build-tsan/routing_pruning_test
  ./build-tsan/fault_sweep_test
else
  echo "ci: TSan build unavailable on this toolchain — skipping (see build-tsan-*.log)"
fi

echo "=== [3/5] Release build (SIMD on) ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j
(cd build-release && ctest --output-on-failure -j)

echo "=== [4/5] Examples end-to-end (build -> save -> reload -> serve via Engine) ==="
./build-release/example_quickstart
./build-release/example_data_pipeline
./build-release/example_od_query
./build-release/example_model_refresh
./build-release/example_sharded_serving

echo "=== [5/5] Perf gates (chain >= ${MIN_SPEEDUP}x, binary load >= ${MIN_LOAD_SPEEDUP}x, pruned routing >= ${MIN_ROUTE_SPEEDUP}x) ==="
./build-release/bench_chain_micro BENCH_chain.json "$REPS"
SPEEDUP="$(grep -o '"speedup_vs_reference": *[0-9.eE+-]*' BENCH_chain.json \
           | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$SPEEDUP" ]]; then
  echo "ci: BENCH_chain.json has no speedup_vs_reference" >&2
  exit 1
fi
if ! awk -v s="$SPEEDUP" -v min="$MIN_SPEEDUP" \
     'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }'; then
  echo "ci: speedup_vs_reference = $SPEEDUP < $MIN_SPEEDUP — perf regression" >&2
  exit 1
fi
LOAD_SPEEDUP="$(grep -o '"binary_load_speedup_vs_text": *[0-9.eE+-]*' BENCH_chain.json \
               | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$LOAD_SPEEDUP" ]]; then
  echo "ci: BENCH_chain.json has no binary_load_speedup_vs_text" >&2
  exit 1
fi
if ! awk -v s="$LOAD_SPEEDUP" -v min="$MIN_LOAD_SPEEDUP" \
     'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }'; then
  echo "ci: binary_load_speedup_vs_text = $LOAD_SPEEDUP < $MIN_LOAD_SPEEDUP — artifact regression" >&2
  exit 1
fi
if ! grep -q '"route_dfs_prefix_reuse"' BENCH_chain.json; then
  echo "ci: BENCH_chain.json has no route_dfs_prefix_reuse series" >&2
  exit 1
fi
# The pruned routing series and its headline: the bench aborts before
# writing the JSON if any pruned route's on-time probability differs from
# the plain search's on the same OD case, so the ratio below is a speedup
# at proven-equal route quality.
if ! grep -q '"route_dfs_pruned"' BENCH_chain.json; then
  echo "ci: BENCH_chain.json has no route_dfs_pruned series" >&2
  exit 1
fi
ROUTE_SPEEDUP="$(grep -o '"route_speedup_pruned_vs_plain": *[0-9.eE+-]*' BENCH_chain.json \
               | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$ROUTE_SPEEDUP" ]]; then
  echo "ci: BENCH_chain.json has no route_speedup_pruned_vs_plain" >&2
  exit 1
fi
if ! awk -v s="$ROUTE_SPEEDUP" -v min="$MIN_ROUTE_SPEEDUP" \
     'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }'; then
  echo "ci: route_speedup_pruned_vs_plain = $ROUTE_SPEEDUP < $MIN_ROUTE_SPEEDUP — pruned routing regression" >&2
  exit 1
fi
# The refresh/degradation series must be present: the bench itself aborts
# if a swap fails, a churned batch returns an error response, or a
# fallback estimate reports the wrong degradation provenance, so presence
# means those runtime gates passed.
for refresh_series in swap_publish swap_verified_publish \
                      estimate_during_swap fallback_subpath fallback_edge; do
  if ! grep -q "\"${refresh_series}\"" BENCH_chain.json; then
    echo "ci: BENCH_chain.json has no ${refresh_series} series" >&2
    exit 1
  fi
done
SWAP_SECONDS="$(grep -o '"swap_publish_seconds": *[0-9.eE+-]*' BENCH_chain.json \
               | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$SWAP_SECONDS" ]]; then
  echo "ci: BENCH_chain.json has no swap_publish_seconds" >&2
  exit 1
fi
# Probe-verified publish: the bench aborts on any probe divergence, so the
# headline's presence certifies the K=8 golden probes reproduced their
# stamped references bit-identically; the ratio gate bounds what the
# verification costs on top of a plain swap.
SWAP_VERIFIED_SECONDS="$(grep -o '"swap_verified_publish_seconds": *[0-9.eE+-]*' BENCH_chain.json \
                        | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$SWAP_VERIFIED_SECONDS" ]]; then
  echo "ci: BENCH_chain.json has no swap_verified_publish_seconds" >&2
  exit 1
fi
if ! awk -v v="$SWAP_VERIFIED_SECONDS" -v p="$SWAP_SECONDS" -v max="$MAX_VERIFY_RATIO" \
     'BEGIN { exit (p + 0 > 0 && v + 0 <= p * max) ? 0 : 1 }'; then
  echo "ci: swap_verified_publish_seconds = $SWAP_VERIFIED_SECONDS > ${MAX_VERIFY_RATIO}x swap_publish_seconds = $SWAP_SECONDS — probe verification overhead regression" >&2
  exit 1
fi
ENGINE_RATIO="$(grep -o '"engine_batch_vs_direct": *[0-9.eE+-]*' BENCH_chain.json \
               | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$ENGINE_RATIO" ]]; then
  echo "ci: BENCH_chain.json has no engine_batch_vs_direct (Engine batch series missing)" >&2
  exit 1
fi
if ! awk -v s="$ENGINE_RATIO" -v min="$MIN_ENGINE_RATIO" \
     'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }'; then
  echo "ci: engine_batch_vs_direct = $ENGINE_RATIO < $MIN_ENGINE_RATIO — serving facade overhead regression" >&2
  exit 1
fi
SCALING="$(grep -o '"batch_scaling_8v1": *[0-9.eE+-]*' BENCH_chain.json \
           | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$SCALING" ]]; then
  echo "ci: BENCH_chain.json has no batch_scaling_8v1" >&2
  exit 1
fi
# Parallel speedup is bounded above by the host's core count, so the
# batch-scaling floor is enforced only where 8 workers can physically beat
# 1 by that margin; the measured value is recorded either way.
CORES="$(nproc 2>/dev/null || echo 1)"
if [[ "$CORES" -ge 8 ]]; then
  if ! awk -v s="$SCALING" -v min="$MIN_BATCH_SCALING" \
       'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }'; then
    echo "ci: batch_scaling_8v1 = $SCALING < $MIN_BATCH_SCALING — batch layer scaling regression" >&2
    exit 1
  fi
else
  echo "ci: batch_scaling_8v1 = $SCALING (informational — host has $CORES CPUs; the >= $MIN_BATCH_SCALING gate needs >= 8)"
fi
# Sharded serving: the bench aborts before writing the JSON if any
# single-shard request diverges from the monolithic engine bit-for-bit, a
# cross-shard stitch reports dishonest provenance, or the largest resident
# shard is not strictly below the monolithic footprint — so series
# presence certifies those gates, and the ratio below prices the
# shard-routing front door against the unsplit model.
for sharded_series in sharded_estimate sharded_estimate_mono \
                      sharded_estimate_cross; do
  if ! grep -q "\"${sharded_series}\"" BENCH_chain.json; then
    echo "ci: BENCH_chain.json has no ${sharded_series} series" >&2
    exit 1
  fi
done
SHARDED_RATIO="$(grep -o '"sharded_vs_mono": *[0-9.eE+-]*' BENCH_chain.json \
                | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$SHARDED_RATIO" ]]; then
  echo "ci: BENCH_chain.json has no sharded_vs_mono" >&2
  exit 1
fi
if ! awk -v s="$SHARDED_RATIO" -v min="$MIN_SHARDED_RATIO" \
     'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }'; then
  echo "ci: sharded_vs_mono = $SHARDED_RATIO < $MIN_SHARDED_RATIO — shard routing overhead regression" >&2
  exit 1
fi
# Overload series: presence certifies the bench's internal runtime gates
# (a deadline that never trips, a wrong unwind status, or a storm that
# never sheds each abort the bench before the JSON is written).
for overload_series in estimate_deadline_overshoot overload_shed; do
  if ! grep -q "\"${overload_series}\"" BENCH_chain.json; then
    echo "ci: BENCH_chain.json has no ${overload_series} series" >&2
    exit 1
  fi
done
OVERSHOOT_RATIO="$(grep -o '"deadline_overshoot_p50_vs_estimate_p50": *[0-9.eE+-]*' BENCH_chain.json \
                  | grep -o '[0-9.eE+-]*$' || true)"
if [[ -z "$OVERSHOOT_RATIO" ]]; then
  echo "ci: BENCH_chain.json has no deadline_overshoot_p50_vs_estimate_p50" >&2
  exit 1
fi
if ! awk -v s="$OVERSHOOT_RATIO" -v max="$MAX_OVERSHOOT_RATIO" \
     'BEGIN { exit (s + 0 <= max + 0) ? 0 : 1 }'; then
  echo "ci: deadline_overshoot_p50_vs_estimate_p50 = $OVERSHOOT_RATIO > $MAX_OVERSHOOT_RATIO — cancellation checkpoints have coarsened" >&2
  exit 1
fi
echo "ci: OK (speedup_vs_reference = $SPEEDUP, binary load ${LOAD_SPEEDUP}x text, engine_batch_vs_direct = $ENGINE_RATIO, batch_scaling_8v1 = $SCALING, route_speedup_pruned_vs_plain = $ROUTE_SPEEDUP, swap_publish_seconds = $SWAP_SECONDS, swap_verified_publish_seconds = $SWAP_VERIFIED_SECONDS, deadline_overshoot_p50_vs_estimate_p50 = $OVERSHOOT_RATIO, sharded_vs_mono = $SHARDED_RATIO)"
