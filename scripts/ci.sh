#!/usr/bin/env bash
# CI gate: builds and tests the tree in two configurations, then runs the
# chain perf record and fails if the kernel speedup regresses.
#
#   1. Debug + ASan, SIMD forced to the scalar fallback — the golden
#      equivalence tests cover the non-SIMD chain kernel under the
#      sanitizer.
#   2. Release with SIMD on — the production configuration.
#   3. End-to-end examples in Release: quickstart and data_pipeline both
#      build -> save -> reload a binary model artifact and serve from it,
#      exiting nonzero if the reloaded estimates diverge from the built
#      model.
#   4. scripts/run_benches.sh-equivalent perf record; fails the gate when
#      BENCH_chain.json reports speedup_vs_reference < PCDE_CI_MIN_SPEEDUP
#      (default 3) or the binary model load is less than
#      PCDE_CI_MIN_LOAD_SPEEDUP (default 10) times faster than the text
#      parser.
#
# Usage: scripts/ci.sh [reps]
set -euo pipefail

cd "$(dirname "$0")/.."
REPS="${1:-8}"
MIN_SPEEDUP="${PCDE_CI_MIN_SPEEDUP:-3}"
MIN_LOAD_SPEEDUP="${PCDE_CI_MIN_LOAD_SPEEDUP:-10}"

echo "=== [1/4] Debug + ASan build (scalar SIMD fallback) ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DPCDE_SANITIZE=address \
      -DPCDE_SIMD=OFF -DPCDE_BUILD_BENCHES=OFF -DPCDE_BUILD_EXAMPLES=OFF
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j)

echo "=== [2/4] Release build (SIMD on) ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j
(cd build-release && ctest --output-on-failure -j)

echo "=== [3/4] Examples end-to-end (build -> save -> reload -> serve) ==="
./build-release/example_quickstart
./build-release/example_data_pipeline

echo "=== [4/4] Perf gates (chain >= ${MIN_SPEEDUP}x, binary load >= ${MIN_LOAD_SPEEDUP}x) ==="
./build-release/bench_chain_micro BENCH_chain.json "$REPS"
SPEEDUP="$(grep -o '"speedup_vs_reference": *[0-9.eE+-]*' BENCH_chain.json \
           | grep -o '[0-9.eE+-]*$')"
if [[ -z "$SPEEDUP" ]]; then
  echo "ci: BENCH_chain.json has no speedup_vs_reference" >&2
  exit 1
fi
if ! awk -v s="$SPEEDUP" -v min="$MIN_SPEEDUP" \
     'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }'; then
  echo "ci: speedup_vs_reference = $SPEEDUP < $MIN_SPEEDUP — perf regression" >&2
  exit 1
fi
LOAD_SPEEDUP="$(grep -o '"binary_load_speedup_vs_text": *[0-9.eE+-]*' BENCH_chain.json \
               | grep -o '[0-9.eE+-]*$')"
if [[ -z "$LOAD_SPEEDUP" ]]; then
  echo "ci: BENCH_chain.json has no binary_load_speedup_vs_text" >&2
  exit 1
fi
if ! awk -v s="$LOAD_SPEEDUP" -v min="$MIN_LOAD_SPEEDUP" \
     'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }'; then
  echo "ci: binary_load_speedup_vs_text = $LOAD_SPEEDUP < $MIN_LOAD_SPEEDUP — artifact regression" >&2
  exit 1
fi
echo "ci: OK (speedup_vs_reference = $SPEEDUP, binary load ${LOAD_SPEEDUP}x text)"
